#ifndef SVQ_CORE_ENGINE_H_
#define SVQ_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "svq/cache/cache_options.h"
#include "svq/cache/cache_stats.h"
#include "svq/cache/query_cache.h"
#include "svq/common/execution_context.h"
#include "svq/common/result.h"
#include "svq/core/baselines.h"
#include "svq/core/ingest.h"
#include "svq/core/online_engine.h"
#include "svq/core/query.h"
#include "svq/core/repository.h"
#include "svq/core/rvaq.h"
#include "svq/models/synthetic_models.h"

namespace svq::core {

/// Which algorithm answers an offline top-K query.
enum class OfflineAlgorithm { kRvaq, kRvaqNoSkip, kFagin, kPqTraverse };

/// An immutable point-in-time view of the engine's catalog: every
/// registered video, every ingested artifact set, and the model suite /
/// online config in force when the snapshot was taken.
///
/// Snapshots are published with copy-on-write semantics: a writer copies
/// the current snapshot (cheap — entries hold shared_ptrs, not artifact
/// bytes), mutates the copy, and swaps it in atomically. A query *pins*
/// the snapshot it starts on by holding the shared_ptr, so catalog churn
/// after the pin — new videos, new ingests, suite swaps — is invisible to
/// it, and the refcounted `IngestedVideo` artifacts it reads stay alive
/// even after the catalog has moved on. Once published, a snapshot is
/// never mutated; concurrent readers need no locks.
struct CatalogSnapshot {
  struct Entry {
    std::shared_ptr<const video::SyntheticVideo> video;
    video::VideoId id = video::kInvalidVideoId;
    /// Set once the video is ingested. Shared ownership is what lets a
    /// pinned snapshot outlive later catalog churn.
    std::shared_ptr<const IngestedVideo> ingested;
  };

  std::map<std::string, Entry> videos;
  video::VideoId next_id = 0;
  /// This snapshot generation's query cache (docs/caching.md); nullptr when
  /// the engine runs with caching disabled. Every Publish attaches a fresh
  /// instance, so a cache entry can never outlive — or be read across — the
  /// snapshot whose artifacts produced it: staleness is impossible by
  /// construction and pinned readers keep hitting their own generation.
  std::shared_ptr<svq::cache::SnapshotCache> cache;
  /// Immutable within the snapshot: queries build their per-execution
  /// model instances from these copies, so a concurrent set_suite() /
  /// set_online_config() can never race a running query (the old
  /// `mutable_suite()` escape hatch is gone for exactly that reason).
  models::ModelSuite suite;
  OnlineConfig online_config;

  /// Entry lookup; nullptr when the name is not registered. The pointer is
  /// valid for the snapshot's lifetime.
  const Entry* Find(const std::string& video_name) const;
};

/// A pinned, refcounted snapshot handle. Holding one keeps every artifact
/// reachable from it alive.
using SnapshotPtr = std::shared_ptr<const CatalogSnapshot>;

/// Snapshot-pinned execution: runs entirely against `snapshot`, regardless
/// of any catalog churn after the pin. These are what the
/// VideoQueryEngine::Execute* members delegate to after pinning; they are
/// exposed so callers can run several queries against one consistent view
/// (and so tests can prove the isolation). `suite_override`, when non-null,
/// replaces the snapshot's model suite for this execution only — the
/// per-statement USING mechanism, without mutating any shared state.
Result<OnlineResult> ExecuteOnlineOn(
    const SnapshotPtr& snapshot, const Query& query,
    const std::string& video_name,
    OnlineEngine::Mode mode = OnlineEngine::Mode::kSvaqd,
    const ExecutionContext& context = {},
    const models::ModelSuite* suite_override = nullptr);

Result<TopKResult> ExecuteTopKOn(
    const SnapshotPtr& snapshot, const Query& query,
    const std::string& video_name, int k,
    OfflineAlgorithm algorithm = OfflineAlgorithm::kRvaq,
    const OfflineOptions& options = OfflineOptions(),
    const ExecutionContext& context = {});

Result<RepositoryResult> ExecuteTopKAllOn(
    const SnapshotPtr& snapshot, const Query& query, int k,
    const OfflineOptions& options = OfflineOptions(),
    const ExecutionContext& context = {});

/// The user-facing facade: a video repository plus query execution, safe
/// for concurrent serving.
///
/// Concurrency protocol (writer/reader):
///  - The whole catalog lives in one immutable CatalogSnapshot behind a
///    mutex-guarded shared_ptr. Readers (queries, Pin, Ingested, HasVideo)
///    grab the pointer under the mutex — a few instructions — and then
///    work lock-free on the pinned snapshot. Readers never block writers
///    and never block each other.
///  - Writers (AddVideo, Ingest, IngestAll, set_suite, set_online_config)
///    serialize on a writer mutex, build a new snapshot copy-on-write, and
///    publish it with one pointer swap. Ingestion work happens while the
///    writer mutex is held (writers queue behind an in-flight ingest), but
///    queries keep executing against the previous snapshot throughout.
///  - A query observes the catalog exactly as it was when the query
///    started: an Ingest that completes mid-query is invisible to it, and
///    artifacts it reads cannot be destroyed under it (shared ownership).
///
/// Register videos with AddVideo; run streaming queries with ExecuteOnline
/// (SVAQ/SVAQD, no pre-processing); ingest videos once with Ingest and run
/// ranked top-K queries with ExecuteTopK (RVAQ and baselines). Model
/// instances are created per execution from the pinned snapshot's
/// ModelSuite, so the vocabulary always covers the query's labels and
/// inference accounting is per-run.
class VideoQueryEngine {
 public:
  explicit VideoQueryEngine(
      models::ModelSuite suite = models::ModelSuite(),
      OnlineConfig online_config = OnlineConfig(),
      IngestOptions ingest_options = IngestOptions(),
      svq::cache::CacheOptions cache_options = svq::cache::CacheOptions());

  /// Registers a video under its `name()`. Errors: AlreadyExists.
  Result<video::VideoId> AddVideo(
      std::shared_ptr<const video::SyntheticVideo> video);

  /// Registers artifacts reopened from a kDisk ingest directory
  /// (OpenIngestedVideo) under `ingested->name`. The entry carries no raw
  /// video, so offline top-K queries work immediately while online /
  /// streaming execution over it reports FailedPrecondition (re-running
  /// inference needs the frames, which only the original ingest had).
  /// Errors: InvalidArgument (null/empty name), AlreadyExists.
  Result<video::VideoId> AddIngested(
      std::shared_ptr<const IngestedVideo> ingested);

  /// Runs the one-time ingestion phase for `video_name` (paper §4.2) and
  /// publishes the artifacts in a new snapshot. Queries already running
  /// keep their pinned pre-ingest view. Errors: NotFound; AlreadyExists
  /// when already ingested.
  Status Ingest(const std::string& video_name);

  /// Ingests every registered-but-not-ingested video, processing up to
  /// `parallelism` videos concurrently (0 = hardware concurrency). Videos
  /// are independent, so results are identical to serial ingestion. All
  /// successes publish atomically in one snapshot; on error the successes
  /// are kept and the first error is returned.
  Status IngestAll(int parallelism = 0);

  /// Replaces the model suite / online config for *future* snapshots.
  /// In-flight queries keep the suite of the snapshot they pinned.
  void set_suite(models::ModelSuite suite);
  void set_online_config(OnlineConfig online_config);

  /// Pins the current catalog snapshot. Hold the handle to run several
  /// queries against one consistent view via the Execute*On functions.
  SnapshotPtr Pin() const;

  /// Ingested artifacts; nullptr when not registered or not ingested. The
  /// returned pointer participates in snapshot ownership, so it stays
  /// valid across later catalog churn.
  std::shared_ptr<const IngestedVideo> Ingested(
      const std::string& video_name) const;

  /// Whether a video is registered under this name (in the current
  /// snapshot).
  bool HasVideo(const std::string& video_name) const;

  /// Copies of the current snapshot's suite / config.
  models::ModelSuite suite() const;
  OnlineConfig online_config() const;

  /// Engine-lifetime cache counters (cumulative across snapshot
  /// generations). Always non-null, even with caching disabled — the
  /// counters simply stay at zero.
  const std::shared_ptr<svq::cache::CacheStats>& cache_stats() const {
    return cache_stats_;
  }

  /// Streaming execution of `query` over the named video (paper §3), on a
  /// snapshot pinned at call entry.
  Result<OnlineResult> ExecuteOnline(
      const Query& query, const std::string& video_name,
      OnlineEngine::Mode mode = OnlineEngine::Mode::kSvaqd,
      const ExecutionContext& context = {});

  /// Ranked top-K execution over the named (ingested) video (paper §4), on
  /// a snapshot pinned at call entry.
  Result<TopKResult> ExecuteTopK(
      const Query& query, const std::string& video_name, int k,
      OfflineAlgorithm algorithm = OfflineAlgorithm::kRvaq,
      const OfflineOptions& options = OfflineOptions(),
      const ExecutionContext& context = {});

  /// Ranked top-K over every ingested video in the repository (paper §4.2
  /// multi-video setting), on a snapshot pinned at call entry. Errors:
  /// FailedPrecondition when nothing has been ingested yet.
  Result<RepositoryResult> ExecuteTopKAll(
      const Query& query, int k,
      const OfflineOptions& options = OfflineOptions(),
      const ExecutionContext& context = {});

 private:
  /// Attaches a fresh SnapshotCache (when caching is enabled) and
  /// atomically replaces the published snapshot. Called with writer_mu_
  /// held; the single choke point through which every catalog mutation
  /// invalidates the cache.
  void Publish(std::shared_ptr<CatalogSnapshot> next);

  /// Runs the ingestion phase for one entry against `snapshot`'s suite.
  /// Pure compute: touches no engine state.
  Result<IngestedVideo> IngestOne(const CatalogSnapshot& snapshot,
                                  const CatalogSnapshot::Entry& entry) const;

  /// Set at construction, immutable afterwards (safe to read from any
  /// thread without locks).
  const IngestOptions ingest_options_;
  const svq::cache::CacheOptions cache_options_;
  /// Shared with every snapshot generation's cache; outlives them all.
  std::shared_ptr<svq::cache::CacheStats> cache_stats_;

  /// Serializes writers; never held by readers.
  std::mutex writer_mu_;

  /// Guards only the snapshot_ pointer itself.
  mutable std::mutex snapshot_mu_;
  SnapshotPtr snapshot_;
};

}  // namespace svq::core

#endif  // SVQ_CORE_ENGINE_H_
