#ifndef SVQ_CORE_ENGINE_H_
#define SVQ_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "svq/common/result.h"
#include "svq/core/baselines.h"
#include "svq/core/ingest.h"
#include "svq/core/online_engine.h"
#include "svq/core/query.h"
#include "svq/core/repository.h"
#include "svq/core/rvaq.h"
#include "svq/models/synthetic_models.h"

namespace svq::core {

/// Which algorithm answers an offline top-K query.
enum class OfflineAlgorithm { kRvaq, kRvaqNoSkip, kFagin, kPqTraverse };

/// The user-facing facade: a video repository plus query execution.
///
/// Register videos with AddVideo; run streaming queries with ExecuteOnline
/// (SVAQ/SVAQD, no pre-processing); ingest videos once with Ingest and run
/// ranked top-K queries with ExecuteTopK (RVAQ and baselines). Model
/// instances are created per execution with the engine's ModelSuite, so the
/// vocabulary always covers the query's labels and inference accounting is
/// per-run.
class VideoQueryEngine {
 public:
  explicit VideoQueryEngine(models::ModelSuite suite = models::ModelSuite(),
                            OnlineConfig online_config = OnlineConfig(),
                            IngestOptions ingest_options = IngestOptions());

  /// Registers a video under its `name()`. Errors: AlreadyExists.
  Result<video::VideoId> AddVideo(
      std::shared_ptr<const video::SyntheticVideo> video);

  /// Runs the one-time ingestion phase for `video_name` (paper §4.2).
  /// Errors: NotFound; AlreadyExists when already ingested.
  Status Ingest(const std::string& video_name);

  /// Ingests every registered-but-not-ingested video, processing up to
  /// `parallelism` videos concurrently (0 = hardware concurrency). Videos
  /// are independent, so results are identical to serial ingestion. On
  /// error, successfully ingested videos are kept and the first error is
  /// returned.
  Status IngestAll(int parallelism = 0);

  /// Ingested metadata; nullptr when not ingested.
  const IngestedVideo* Ingested(const std::string& video_name) const;

  /// Whether a video is registered under this name.
  bool HasVideo(const std::string& video_name) const {
    return videos_.contains(video_name);
  }

  /// Streaming execution of `query` over the named video (paper §3).
  Result<OnlineResult> ExecuteOnline(
      const Query& query, const std::string& video_name,
      OnlineEngine::Mode mode = OnlineEngine::Mode::kSvaqd);

  /// Ranked top-K execution over the named (ingested) video (paper §4).
  Result<TopKResult> ExecuteTopK(
      const Query& query, const std::string& video_name, int k,
      OfflineAlgorithm algorithm = OfflineAlgorithm::kRvaq,
      const OfflineOptions& options = OfflineOptions());

  /// Ranked top-K over every ingested video in the repository (paper §4.2
  /// multi-video setting). Errors: FailedPrecondition when nothing has been
  /// ingested yet.
  Result<RepositoryResult> ExecuteTopKAll(
      const Query& query, int k,
      const OfflineOptions& options = OfflineOptions());

  const models::ModelSuite& suite() const { return suite_; }
  models::ModelSuite* mutable_suite() { return &suite_; }
  const OnlineConfig& online_config() const { return online_config_; }
  OnlineConfig* mutable_online_config() { return &online_config_; }

 private:
  struct Entry {
    std::shared_ptr<const video::SyntheticVideo> video;
    video::VideoId id = video::kInvalidVideoId;
    std::optional<IngestedVideo> ingested;
  };

  Result<Entry*> FindEntry(const std::string& video_name);

  models::ModelSuite suite_;
  OnlineConfig online_config_;
  IngestOptions ingest_options_;
  std::map<std::string, Entry> videos_;
  video::VideoId next_id_ = 0;
};

}  // namespace svq::core

#endif  // SVQ_CORE_ENGINE_H_
