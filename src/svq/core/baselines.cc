#include "svq/core/baselines.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace svq::core {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SeqAccumulator {
  video::Interval clips;
  int64_t remaining = 0;
  double sum = 0.0;
};

/// Gathers the query's score tables in (objects..., extra actions...,
/// primary action) order, matching RunRvaq's layout.
Status CollectTables(const IngestedVideo& ingested, const Query& query,
                     std::vector<const storage::ScoreTable*>* tables) {
  for (const std::string& object : query.objects) {
    const storage::ScoreTable* table = ingested.ObjectTable(object);
    if (table == nullptr) {
      return Status::NotFound("no score table for object: " + object);
    }
    tables->push_back(table);
  }
  for (const std::string& extra : query.extra_actions) {
    const storage::ScoreTable* table = ingested.ActionTable(extra);
    if (table == nullptr) {
      return Status::NotFound("no score table for action: " + extra);
    }
    tables->push_back(table);
  }
  const storage::ScoreTable* action_table = ingested.ActionTable(query.action);
  if (action_table == nullptr) {
    return Status::NotFound("no score table for action: " + query.action);
  }
  tables->push_back(action_table);
  return Status::OK();
}

std::vector<SeqAccumulator> InitAccumulators(
    const video::IntervalSet& candidates, const SequenceScoring& scoring) {
  std::vector<SeqAccumulator> seqs;
  for (const video::Interval& interval : candidates.intervals()) {
    seqs.push_back({interval, interval.length(), scoring.AggregateIdentity()});
  }
  return seqs;
}

int64_t FindAccumulator(const std::vector<SeqAccumulator>& seqs,
                        video::ClipIndex clip) {
  auto it = std::upper_bound(seqs.begin(), seqs.end(), clip,
                             [](video::ClipIndex c, const SeqAccumulator& s) {
                               return c < s.clips.begin;
                             });
  if (it == seqs.begin()) return -1;
  --it;
  return it->clips.Contains(clip) ? it - seqs.begin() : -1;
}

TopKResult FinishExact(std::vector<SeqAccumulator> seqs, int k,
                       OfflineRunStats stats,
                       const storage::DiskCostModel& cost_model) {
  std::sort(seqs.begin(), seqs.end(),
            [](const SeqAccumulator& a, const SeqAccumulator& b) {
              if (a.sum != b.sum) return a.sum > b.sum;
              return a.clips.begin < b.clips.begin;
            });
  TopKResult result;
  const size_t n = std::min<size_t>(static_cast<size_t>(k), seqs.size());
  for (size_t i = 0; i < n; ++i) {
    result.sequences.push_back(
        {seqs[i].clips, seqs[i].sum, seqs[i].sum});
  }
  stats.virtual_ms = stats.storage.VirtualMs(cost_model);
  result.stats = stats;
  return result;
}

}  // namespace

Result<TopKResult> RunFagin(const IngestedVideo& ingested, const Query& query,
                            int k, const SequenceScoring& scoring,
                            const storage::DiskCostModel& cost_model,
                            const ExecutionContext& context) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  SVQ_RETURN_NOT_OK(context.Check());
  const double t0 = NowMs();
  OfflineRunStats stats;

  SVQ_ASSIGN_OR_RETURN(const video::IntervalSet candidates,
                       CandidateSequences(ingested, query));
  stats.candidate_sequences =
      static_cast<int64_t>(candidates.intervals().size());
  stats.candidate_clips = candidates.TotalLength();
  if (candidates.empty()) {
    TopKResult empty;
    empty.stats.algorithm_ms = NowMs() - t0;
    return empty;
  }
  std::vector<const storage::ScoreTable*> tables;
  SVQ_RETURN_NOT_OK(CollectTables(ingested, query, &tables));
  std::vector<storage::TableReader> readers;
  for (const storage::ScoreTable* table : tables) {
    readers.emplace_back(table, &stats.storage);
  }

  std::vector<SeqAccumulator> seqs = InitAccumulators(candidates, scoring);
  int64_t incomplete = 0;
  for (const SeqAccumulator& seq : seqs) incomplete += seq.remaining;

  // Classic FA access pattern: every clip surfaced by ANY sorted cursor is
  // immediately resolved with random accesses on the remaining tables —
  // including clips that then turn out to lie outside P_q. FA terminates
  // only once every candidate clip has been *seen in all tables* (Fagin's
  // certainty condition), which forces the cursors down to each candidate's
  // deepest rank; both are the sources of FA's overhead (paper §5.1).
  std::unordered_map<video::ClipIndex, bool> resolved;
  std::unordered_map<video::ClipIndex, int> seen_in;
  const int num_tables = static_cast<int>(readers.size());
  int64_t candidates_unseen = incomplete;
  int64_t rank = 0;
  bool progress = true;
  while (candidates_unseen > 0 && progress) {
    SVQ_RETURN_NOT_OK(context.Check());
    progress = false;
    for (size_t t = 0; t < readers.size(); ++t) {
      if (rank >= readers[t].NumRows()) continue;
      progress = true;
      auto row = readers[t].SortedAccess(rank);
      if (!row.ok()) return row.status();
      const video::ClipIndex clip = row->clip;
      if (++seen_in[clip] == num_tables &&
          FindAccumulator(seqs, clip) >= 0) {
        --candidates_unseen;
      }
      if (!resolved.emplace(clip, true).second) continue;
      std::vector<double> object_scores(readers.size() - 1, 0.0);
      for (size_t i = 0; i + 1 < readers.size(); ++i) {
        object_scores[i] = readers[i].RandomAccessOrZero(clip);
      }
      const double action_score = readers.back().RandomAccessOrZero(clip);
      const int64_t idx = FindAccumulator(seqs, clip);
      if (idx < 0) continue;  // checked against P_q ranges and discarded
      SeqAccumulator& seq = seqs[static_cast<size_t>(idx)];
      seq.sum = scoring.Aggregate(
          seq.sum, scoring.ClipScore(object_scores, action_score));
      --seq.remaining;
      --incomplete;
    }
    ++rank;
  }
  if (incomplete > 0) {
    return Status::Internal(
        "FA exhausted all tables before completing every sequence");
  }
  stats.algorithm_ms = NowMs() - t0;
  return FinishExact(std::move(seqs), k, stats, cost_model);
}

Result<TopKResult> RunRvaqNoSkip(const IngestedVideo& ingested,
                                 const Query& query, int k,
                                 const SequenceScoring& scoring,
                                 const storage::DiskCostModel& cost_model,
                                 const ExecutionContext& context) {
  OfflineOptions options;
  options.enable_skip = false;
  options.cost_model = cost_model;
  return RunRvaq(ingested, query, k, scoring, options, context);
}

Result<TopKResult> RunPqTraverse(const IngestedVideo& ingested,
                                 const Query& query, int k,
                                 const SequenceScoring& scoring,
                                 const storage::DiskCostModel& cost_model,
                                 const ExecutionContext& context) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  SVQ_RETURN_NOT_OK(context.Check());
  const double t0 = NowMs();
  OfflineRunStats stats;

  SVQ_ASSIGN_OR_RETURN(const video::IntervalSet candidates,
                       CandidateSequences(ingested, query));
  stats.candidate_sequences =
      static_cast<int64_t>(candidates.intervals().size());
  stats.candidate_clips = candidates.TotalLength();
  if (candidates.empty()) {
    TopKResult empty;
    empty.stats.algorithm_ms = NowMs() - t0;
    return empty;
  }
  std::vector<const storage::ScoreTable*> tables;
  SVQ_RETURN_NOT_OK(CollectTables(ingested, query, &tables));
  std::vector<storage::TableReader> readers;
  for (const storage::ScoreTable* table : tables) {
    readers.emplace_back(table, &stats.storage);
  }

  std::vector<SeqAccumulator> seqs = InitAccumulators(candidates, scoring);
  for (SeqAccumulator& seq : seqs) {
    SVQ_RETURN_NOT_OK(context.Check());
    for (video::ClipIndex clip = seq.clips.begin; clip < seq.clips.end;
         ++clip) {
      std::vector<double> object_scores(readers.size() - 1, 0.0);
      for (size_t i = 0; i + 1 < readers.size(); ++i) {
        object_scores[i] = readers[i].SequentialReadOrZero(clip);
      }
      const double action_score = readers.back().SequentialReadOrZero(clip);
      seq.sum = scoring.Aggregate(
          seq.sum, scoring.ClipScore(object_scores, action_score));
      --seq.remaining;
    }
  }
  stats.algorithm_ms = NowMs() - t0;
  return FinishExact(std::move(seqs), k, stats, cost_model);
}

}  // namespace svq::core
