#ifndef SVQ_CORE_KCRIT_CACHE_H_
#define SVQ_CORE_KCRIT_CACHE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>

#include "svq/cache/fingerprint.h"
#include "svq/cache/kcrit_table.h"
#include "svq/stats/scan_statistics.h"

namespace svq::core {

/// Memoized critical-value computation. SVAQD recomputes `k_crit` whenever
/// a background-probability estimate moves; quantizing `p` on a fine log
/// grid makes the recomputation O(1) amortized without observably changing
/// the resulting critical values.
class CriticalValueCache {
 public:
  /// `min_k` floors the returned quota. The default of 2 encodes that a
  /// single positive prediction is never significant evidence on its own:
  /// when the estimated background probability dips toward zero (no events
  /// observed recently), the raw critical value collapses to 1 and every
  /// stray model false positive would certify its clip.
  /// `shared` (optional) is a snapshot-shared L2 table: on a local miss the
  /// value is fetched from — or computed exactly once into — the shared
  /// table, so concurrent executions on the same snapshot never duplicate a
  /// scan-statistic evaluation. The private map stays as a lock-free L1.
  CriticalValueCache(int window, double num_windows, double alpha,
                     int min_k = 2,
                     std::shared_ptr<svq::cache::KcritTable> shared = nullptr)
      : window_(window), num_windows_(num_windows), alpha_(alpha),
        min_k_(min_k), shared_(std::move(shared)),
        params_key_(svq::cache::Fingerprint()
                        .Mix("kcrit.iid")
                        .Mix(window_)
                        .Mix(num_windows_)
                        .Mix(alpha_)
                        .Mix(min_k_)
                        .value()) {}

  /// Floored `k_crit` for background probability `p`.
  int Get(double p) {
    const int64_t key = Quantize(p);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const auto compute = [this, p] {
      auto result = stats::CriticalValue({p, window_, num_windows_}, alpha_);
      // Inputs are validated by the callers; a failure here is a programming
      // error, so fall back to the most conservative quota.
      int k = result.ok() ? *result : window_ + 1;
      return std::max(k, std::min(min_k_, window_));
    };
    const int k =
        shared_ ? shared_->GetOrCompute(svq::cache::Fingerprint(params_key_)
                                            .Mix(static_cast<uint64_t>(key))
                                            .value(),
                                        compute)
                : compute();
    cache_.emplace(key, k);
    return k;
  }

  int window() const { return window_; }

 private:
  static int64_t Quantize(double p) {
    if (p <= 0.0) return INT64_MIN;
    if (p >= 1.0) return INT64_MAX;
    // ~0.23% relative grid: fine enough that quantization never shifts the
    // critical value by more than the approximation error itself.
    return static_cast<int64_t>(std::llround(std::log(p) * 1000.0));
  }

  int window_;
  double num_windows_;
  double alpha_;
  int min_k_;
  std::shared_ptr<svq::cache::KcritTable> shared_;
  uint64_t params_key_ = 0;
  std::unordered_map<int64_t, int> cache_;
};

/// Critical values for Markov-dependent Bernoulli trials (paper footnote 7)
/// via the exact FMCE embedding: positively dependent (bursty) false
/// positives concentrate events, so the same stationary rate demands a
/// larger quota than the i.i.d. analysis yields. Exact computation is
/// exponential in the window, so this cache requires `window <= 20` — in
/// practice the action window (shots per clip) which is where bursty noise
/// bites.
class MarkovCriticalValueCache {
 public:
  MarkovCriticalValueCache(int window, double num_windows, double alpha,
                           int min_k = 2,
                           std::shared_ptr<svq::cache::KcritTable> shared =
                               nullptr)
      : window_(window), num_windows_(num_windows), alpha_(alpha),
        min_k_(min_k), shared_(std::move(shared)),
        params_key_(svq::cache::Fingerprint()
                        .Mix("kcrit.markov")
                        .Mix(window_)
                        .Mix(num_windows_)
                        .Mix(alpha_)
                        .Mix(min_k_)
                        .value()) {}

  /// Floored `k_crit` for stationary rate `p` and persistence
  /// `p11 = P(event | previous event)`. Falls back to the i.i.d. chain when
  /// `p11 <= p` (no positive dependence).
  int Get(double p, double p11) {
    p = std::clamp(p, 0.0, 1.0);
    p11 = std::clamp(p11, 0.0, 1.0);
    if (p11 < p) p11 = p;
    const int64_t key = (Quantize(p) << 20) ^ Quantize(p11);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const auto compute = [this, p, p11] {
      stats::MarkovChainParams chain;
      chain.p11 = p11;
      chain.p01 = p >= 1.0 ? 1.0 : std::clamp(p * (1.0 - p11) / (1.0 - p),
                                              0.0, 1.0);
      chain.start_p = p;
      const int64_t n = static_cast<int64_t>(num_windows_ * window_);
      auto result = stats::MarkovCriticalValue(window_, n, chain, alpha_);
      int k = result.ok() ? *result : window_ + 1;
      return std::max(k, std::min(min_k_, window_));
    };
    const int k =
        shared_ ? shared_->GetOrCompute(svq::cache::Fingerprint(params_key_)
                                            .Mix(static_cast<uint64_t>(key))
                                            .value(),
                                        compute)
                : compute();
    cache_.emplace(key, k);
    return k;
  }

  int window() const { return window_; }

 private:
  static int64_t Quantize(double p) {
    // Coarser grid than the iid cache: each miss runs the exact embedding.
    if (p <= 1e-12) return -1;
    return static_cast<int64_t>(std::llround(std::log(p) * 50.0)) & 0xFFFFF;
  }

  int window_;
  double num_windows_;
  double alpha_;
  int min_k_;
  std::shared_ptr<svq::cache::KcritTable> shared_;
  uint64_t params_key_ = 0;
  std::unordered_map<int64_t, int> cache_;
};

}  // namespace svq::core

#endif  // SVQ_CORE_KCRIT_CACHE_H_
