#include "svq/core/ingest.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <optional>
#include <string_view>

#include "svq/core/kcrit_cache.h"
#include "svq/io/bytes.h"
#include "svq/io/checksum_format.h"
#include "svq/io/env.h"
#include "svq/runtime/thread_pool.h"
#include "svq/stats/kernel_estimator.h"
#include "svq/storage/sequence_store.h"
#include "svq/video/video_stream.h"

namespace svq::core {

namespace {

// v1: magic + fields, written in place — still readable, no longer
// written. v2: new magic, same fields, plus the CRC-32C checksum footer of
// svq/io/checksum_format.h, written atomically (docs/storage.md).
constexpr uint32_t kManifestMagicV1 = 0x5356514D;  // "SVQM"
constexpr uint32_t kManifestMagicV2 = 0x324D5653;  // "SVM2"
constexpr uint64_t kMaxManifestLabels = 1u << 20;
constexpr uint64_t kMaxLabelLength = 1u << 20;

std::string SanitizeLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

/// Persists everything OpenIngestedVideo needs to rebuild the IngestedVideo
/// without the source video or the models. Written last, atomically: the
/// manifest is the ingest's commit point — a directory without a complete
/// manifest is not a catalog entry (docs/storage.md).
Status WriteManifest(const std::string& directory, const IngestedVideo& v,
                     const std::vector<std::string>& object_labels,
                     const std::vector<std::string>& action_labels,
                     io::Env* env) {
  std::string buffer;
  io::AppendValue(&buffer, kManifestMagicV2);
  io::AppendLengthPrefixedString(&buffer, v.name);
  io::AppendValue(&buffer, v.id);
  io::AppendValue(&buffer, static_cast<int32_t>(v.layout.frames_per_shot));
  io::AppendValue(&buffer, static_cast<int32_t>(v.layout.shots_per_clip));
  io::AppendValue(&buffer, v.layout.fps);
  io::AppendValue(&buffer, v.num_frames);
  io::AppendValue(&buffer, v.num_clips);
  io::AppendValue(&buffer, static_cast<uint64_t>(object_labels.size()));
  for (const std::string& label : object_labels) {
    io::AppendLengthPrefixedString(&buffer, label);
  }
  io::AppendValue(&buffer, static_cast<uint64_t>(action_labels.size()));
  for (const std::string& label : action_labels) {
    io::AppendLengthPrefixedString(&buffer, label);
  }
  io::AppendChecksumFooter(&buffer);
  return io::WriteFileAtomic(env, directory + "/manifest.svqm", buffer);
}

Result<std::unique_ptr<storage::ScoreTable>> BuildTable(
    const std::vector<double>& clip_scores,
    const video::IntervalSet& positive_clips, const IngestOptions& options,
    const std::string& file_stem) {
  // A row exists for every clip with a detection, plus every clip inside
  // the label's positive sequences even when its own score is zero (gap
  // filling can bridge detection-free clips): the offline algorithms rely
  // on candidate clips having rows in every queried table.
  std::vector<storage::ClipScoreRow> rows;
  for (size_t clip = 0; clip < clip_scores.size(); ++clip) {
    if (clip_scores[clip] > 0.0 ||
        positive_clips.Contains(static_cast<int64_t>(clip))) {
      rows.push_back({static_cast<video::ClipIndex>(clip),
                      clip_scores[clip]});
    }
  }
  if (options.backend == IngestOptions::TableBackend::kDisk) {
    const std::string path = options.directory + "/" + file_stem + ".svqt";
    SVQ_RETURN_NOT_OK(
        storage::DiskScoreTable::Write(path, std::move(rows), options.env));
    SVQ_ASSIGN_OR_RETURN(std::unique_ptr<storage::DiskScoreTable> table,
                         storage::DiskScoreTable::Open(path));
    return std::unique_ptr<storage::ScoreTable>(std::move(table));
  }
  SVQ_ASSIGN_OR_RETURN(std::unique_ptr<storage::MemoryScoreTable> table,
                       storage::MemoryScoreTable::Create(std::move(rows)));
  return std::unique_ptr<storage::ScoreTable>(std::move(table));
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic label -> dense-id interning in first-seen (stream) order.
/// The dense ids index the per-label accumulator arrays of the parallel
/// aggregation phase; final outputs are keyed by label string again, so the
/// intern order never leaks into results.
struct LabelIntern {
  std::map<std::string, int> index;
  std::vector<std::string> labels;

  int Intern(const std::string& label) {
    auto [it, inserted] =
        index.try_emplace(label, static_cast<int>(labels.size()));
    if (inserted) labels.push_back(label);
    return it->second;
  }
};

/// One model prediction flattened to (dense label, occurrence unit, score).
/// Units are frames for objects and shots for actions; each unit belongs to
/// exactly one clip, which is what makes the per-clip aggregation phase
/// race-free.
struct UnitPrediction {
  int32_t label = 0;
  int64_t unit = 0;
  double score = 0.0;
};

}  // namespace

Result<video::IntervalSet> ComputePositiveClips(
    const std::vector<uint8_t>& unit_events, int units_per_clip, double alpha,
    double reference_windows, double bandwidth, double initial_p,
    int64_t merge_gap_clips) {
  if (units_per_clip < 1) {
    return Status::InvalidArgument("units_per_clip must be >= 1");
  }
  if (merge_gap_clips < 0) {
    return Status::InvalidArgument("merge_gap_clips must be >= 0");
  }
  stats::KernelRateEstimator::Options est_options;
  est_options.bandwidth = bandwidth;
  est_options.initial_p = initial_p;
  est_options.warmup_ous = static_cast<int64_t>(bandwidth);
  SVQ_ASSIGN_OR_RETURN(stats::KernelRateEstimator estimator,
                       stats::KernelRateEstimator::Create(est_options));
  CriticalValueCache kcrit(units_per_clip, reference_windows, alpha);

  video::IntervalSet positives;
  int64_t last_positive = -1;
  const int64_t num_units = static_cast<int64_t>(unit_events.size());
  const int64_t num_clips =
      (num_units + units_per_clip - 1) / units_per_clip;
  for (int64_t clip = 0; clip < num_clips; ++clip) {
    const int64_t begin = clip * units_per_clip;
    const int64_t end = std::min(num_units, begin + units_per_clip);
    int count = 0;
    for (int64_t u = begin; u < end; ++u) count += unit_events[u] ? 1 : 0;
    // Decide with the critical value in force *before* this clip's data
    // enters the estimate (streaming semantics), then update — feeding the
    // null estimate only from negative clips (see UpdatePolicy docs).
    const int k = kcrit.Get(estimator.rate());
    if (count >= k) {
      // Bridge short gaps, as the online engine does.
      if (last_positive >= 0 && clip - last_positive - 1 <= merge_gap_clips) {
        positives.Add({last_positive, clip + 1});
      } else {
        positives.Add({clip, clip + 1});
      }
      last_positive = clip;
    }
    // Signal-looking clips (count at the critical value, capped at half the
    // clip so a saturated k cannot deadlock the estimate, floored at 2 so a
    // minimal quota cannot starve it) are excluded from the null estimate;
    // see UpdatePolicy::kNegativeUnits.
    const int exclusion = std::max<int>(
        2, std::min<int64_t>(k, std::max<int64_t>(2, (end - begin + 1) / 2)));
    if (count < exclusion) {
      for (int64_t u = begin; u < end; ++u) {
        estimator.Step(unit_events[u] != 0);
      }
    }
  }
  return positives;
}

Status IngestOptions::Validate() const {
  if (object_threshold < 0 || object_threshold > 1 || action_threshold < 0 ||
      action_threshold > 1) {
    return Status::InvalidArgument("thresholds must be in [0, 1]");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (reference_windows < 2.0) {
    return Status::InvalidArgument("reference_windows must be >= 2");
  }
  if (!(object_bandwidth > 0.0) || !(action_bandwidth > 0.0)) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (backend == TableBackend::kDisk && directory.empty()) {
    return Status::InvalidArgument("disk backend requires a directory");
  }
  return Status::OK();
}

const storage::ScoreTable* IngestedVideo::ObjectTable(
    const std::string& label) const {
  auto it = object_tables.find(label);
  return it == object_tables.end() ? nullptr : it->second.get();
}

const storage::ScoreTable* IngestedVideo::ActionTable(
    const std::string& label) const {
  auto it = action_tables.find(label);
  return it == action_tables.end() ? nullptr : it->second.get();
}

const video::IntervalSet* IngestedVideo::ObjectSequences(
    const std::string& label) const {
  auto it = object_sequences.find(label);
  return it == object_sequences.end() ? nullptr : &it->second;
}

const video::IntervalSet* IngestedVideo::ActionSequences(
    const std::string& label) const {
  auto it = action_sequences.find(label);
  return it == action_sequences.end() ? nullptr : &it->second;
}

const storage::TypeStatistics* IngestedVideo::ObjectStatistics(
    const std::string& label) const {
  auto it = object_statistics.find(label);
  return it == object_statistics.end() ? nullptr : &it->second;
}

const storage::TypeStatistics* IngestedVideo::ActionStatistics(
    const std::string& label) const {
  auto it = action_statistics.find(label);
  return it == action_statistics.end() ? nullptr : &it->second;
}

void IngestedVideo::ComputeStatistics() {
  object_statistics.clear();
  action_statistics.clear();
  const double clips = num_clips > 0 ? static_cast<double>(num_clips) : 0.0;
  auto stats_of = [&](const video::IntervalSet* sequences,
                      const storage::ScoreTable* table) {
    storage::TypeStatistics stats;
    if (table != nullptr) stats.table_rows = table->NumRows();
    if (sequences != nullptr) {
      stats.posting_intervals = static_cast<int64_t>(sequences->size());
      stats.covered_clips = sequences->TotalLength();
    }
    if (clips > 0.0) {
      stats.density = static_cast<double>(stats.covered_clips) / clips;
    }
    return stats;
  };
  for (const auto& [label, sequences] : object_sequences) {
    object_statistics.emplace(label,
                              stats_of(&sequences, ObjectTable(label)));
  }
  for (const auto& [label, sequences] : action_sequences) {
    action_statistics.emplace(label,
                              stats_of(&sequences, ActionTable(label)));
  }
  // Tables without posting lists still get a row-count entry: the type was
  // detected somewhere even though no positive sequence survived the scan
  // statistic, and a zero-density entry prices it correctly.
  for (const auto& [label, table] : object_tables) {
    if (!object_statistics.contains(label)) {
      object_statistics.emplace(label, stats_of(nullptr, table.get()));
    }
  }
  for (const auto& [label, table] : action_tables) {
    if (!action_statistics.contains(label)) {
      action_statistics.emplace(label, stats_of(nullptr, table.get()));
    }
  }
}

Result<IngestedVideo> IngestVideo(
    const std::shared_ptr<const video::SyntheticVideo>& video,
    video::VideoId id, models::ObjectTracker* tracker,
    models::ActionRecognizer* recognizer, const IngestOptions& options) {
  if (video == nullptr) {
    return Status::InvalidArgument("video must be set");
  }
  if (tracker == nullptr || recognizer == nullptr) {
    return Status::InvalidArgument("tracker and recognizer must be set");
  }
  SVQ_RETURN_NOT_OK(options.Validate());

  IngestedVideo out;
  out.id = id;
  out.name = video->name();
  out.layout = video->layout();
  out.num_frames = video->num_frames();
  out.num_clips = video->NumClips();

  const models::InferenceStats tracker_base = tracker->stats();
  const models::InferenceStats recognizer_base = recognizer->stats();

  const int threads = options.runtime.ResolvedThreads();
  std::optional<runtime::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  runtime::ThreadPool* pool_ptr = pool ? &*pool : nullptr;
  out.ingest_stats.runtime.threads_used = threads;

  // Phase A — model scoring, strictly in stream order: trackers carry
  // temporal identity state, so inference cannot fan out within one video
  // (cross-video parallelism lives in VideoQueryEngine::IngestAll and
  // RunRepositoryTopK). Predictions are flattened to compact per-clip
  // records so every later phase is model-free and parallel.
  const int64_t num_shots = video->NumShots();
  LabelIntern object_labels;
  LabelIntern action_labels;
  std::vector<std::vector<UnitPrediction>> object_raw(
      static_cast<size_t>(out.num_clips));
  std::vector<std::vector<UnitPrediction>> action_raw(
      static_cast<size_t>(out.num_clips));
  double phase_start = NowMs();
  video::SyntheticVideoStream stream(video, id);
  while (auto clip = stream.NextClip()) {
    const size_t clip_index = static_cast<size_t>(clip->clip);
    for (video::FrameIndex frame = clip->frames.begin;
         frame < clip->frames.end; ++frame) {
      SVQ_ASSIGN_OR_RETURN(const std::vector<models::ObjectDetection> dets,
                           tracker->Track(frame));
      for (const models::ObjectDetection& det : dets) {
        object_raw[clip_index].push_back(
            {static_cast<int32_t>(object_labels.Intern(det.label)),
             static_cast<int64_t>(frame), det.score});
      }
    }
    for (const video::ShotRef& shot : clip->shots) {
      SVQ_ASSIGN_OR_RETURN(const std::vector<models::ActionScore> scores,
                           recognizer->Recognize(shot));
      for (const models::ActionScore& s : scores) {
        action_raw[clip_index].push_back(
            {static_cast<int32_t>(action_labels.Intern(s.label)),
             static_cast<int64_t>(shot.shot), s.score});
      }
    }
  }
  out.ingest_stats.inference_ms = NowMs() - phase_start;

  // Phase B — per-clip predicate scoring, parallel over clips. Each task
  // owns a contiguous clip range; a unit (frame/shot) belongs to exactly
  // one clip, so all writes into the shared per-label arrays are disjoint.
  const size_t num_object_labels = object_labels.labels.size();
  const size_t num_action_labels = action_labels.labels.size();
  std::vector<std::vector<double>> object_scores(
      num_object_labels,
      std::vector<double>(static_cast<size_t>(out.num_clips), 0.0));
  std::vector<std::vector<double>> action_scores(
      num_action_labels,
      std::vector<double>(static_cast<size_t>(out.num_clips), 0.0));
  std::vector<std::vector<uint8_t>> object_events(
      num_object_labels,
      std::vector<uint8_t>(static_cast<size_t>(out.num_frames), 0));
  std::vector<std::vector<uint8_t>> action_events(
      num_action_labels,
      std::vector<uint8_t>(static_cast<size_t>(num_shots), 0));
  phase_start = NowMs();
  runtime::ParallelFor(
      pool_ptr, 0, out.num_clips, options.runtime.grain,
      [&](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t c = chunk_begin; c < chunk_end; ++c) {
          const size_t clip_index = static_cast<size_t>(c);
          for (const UnitPrediction& p : object_raw[clip_index]) {
            object_scores[static_cast<size_t>(p.label)][clip_index] +=
                p.score;
            if (p.score >= options.object_threshold) {
              object_events[static_cast<size_t>(p.label)]
                           [static_cast<size_t>(p.unit)] = 1;
            }
          }
          for (const UnitPrediction& p : action_raw[clip_index]) {
            action_scores[static_cast<size_t>(p.label)][clip_index] +=
                p.score;
            if (p.score >= options.action_threshold) {
              action_events[static_cast<size_t>(p.label)]
                           [static_cast<size_t>(p.unit)] = 1;
            }
          }
        }
      });
  out.ingest_stats.scoring_ms = NowMs() - phase_start;
  object_raw.clear();
  object_raw.shrink_to_fit();
  action_raw.clear();
  action_raw.shrink_to_fit();

  // Phase C — individual sequences (P_o, P_a) via the SVAQD machinery,
  // parallel over types; one label's kernel estimate is independent of
  // every other label. Slots are reduced in intern order after the barrier
  // (first error by index wins), then keyed back by label string.
  const int64_t num_labels =
      static_cast<int64_t>(num_object_labels + num_action_labels);
  std::vector<std::optional<Result<video::IntervalSet>>> sequence_slots(
      static_cast<size_t>(num_labels));
  phase_start = NowMs();
  runtime::ParallelFor(
      pool_ptr, 0, num_labels, /*grain=*/1,
      [&](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          const size_t slot = static_cast<size_t>(i);
          if (slot < num_object_labels) {
            sequence_slots[slot].emplace(ComputePositiveClips(
                object_events[slot], out.layout.FramesPerClip(),
                options.alpha, options.reference_windows,
                options.object_bandwidth, options.initial_object_p,
                options.merge_gap_clips));
          } else {
            sequence_slots[slot].emplace(ComputePositiveClips(
                action_events[slot - num_object_labels],
                out.layout.shots_per_clip, options.alpha,
                options.reference_windows, options.action_bandwidth,
                options.initial_action_p, options.merge_gap_clips));
          }
        }
      });
  out.ingest_stats.sequences_ms = NowMs() - phase_start;
  for (size_t i = 0; i < static_cast<size_t>(num_labels); ++i) {
    Result<video::IntervalSet>& slot = *sequence_slots[i];
    if (!slot.ok()) return slot.status();
    if (i < num_object_labels) {
      out.object_sequences.emplace(object_labels.labels[i],
                                   std::move(slot).value());
    } else {
      out.action_sequences.emplace(
          action_labels.labels[i - num_object_labels],
          std::move(slot).value());
    }
  }

  // Phase D — per-type score-table construction, parallel over types. With
  // the disk backend every label writes its own file, so tasks never share
  // a path.
  std::vector<std::optional<Result<std::unique_ptr<storage::ScoreTable>>>>
      table_slots(static_cast<size_t>(num_labels));
  // Read-only views for the parallel tasks: lookups must never insert.
  const auto& object_sequences = out.object_sequences;
  const auto& action_sequences = out.action_sequences;
  phase_start = NowMs();
  runtime::ParallelFor(
      pool_ptr, 0, num_labels, /*grain=*/1,
      [&](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          const size_t slot = static_cast<size_t>(i);
          if (slot < num_object_labels) {
            const std::string& label = object_labels.labels[slot];
            table_slots[slot].emplace(
                BuildTable(object_scores[slot], object_sequences.at(label),
                           options, "obj_" + SanitizeLabel(label)));
          } else {
            const std::string& label =
                action_labels.labels[slot - num_object_labels];
            table_slots[slot].emplace(BuildTable(
                action_scores[slot - num_object_labels],
                action_sequences.at(label), options,
                "act_" + SanitizeLabel(label)));
          }
        }
      });
  out.ingest_stats.tables_ms = NowMs() - phase_start;
  for (size_t i = 0; i < static_cast<size_t>(num_labels); ++i) {
    Result<std::unique_ptr<storage::ScoreTable>>& slot = *table_slots[i];
    if (!slot.ok()) return slot.status();
    if (i < num_object_labels) {
      out.object_tables.emplace(object_labels.labels[i],
                                std::move(slot).value());
    } else {
      out.action_tables.emplace(action_labels.labels[i - num_object_labels],
                                std::move(slot).value());
    }
  }
  if (pool_ptr != nullptr) {
    out.ingest_stats.runtime.Merge(pool_ptr->Counters());
  }

  // Persist the individual sequences and the manifest alongside the disk
  // tables so the directory can be reopened without re-ingesting.
  if (options.backend == IngestOptions::TableBackend::kDisk) {
    SVQ_RETURN_NOT_OK(storage::SequenceStore::Save(
        options.directory + "/object_sequences.svqs", out.object_sequences,
        options.env));
    SVQ_RETURN_NOT_OK(storage::SequenceStore::Save(
        options.directory + "/action_sequences.svqs", out.action_sequences,
        options.env));
    std::vector<std::string> object_labels;
    for (const auto& [label, _] : out.object_tables) {
      object_labels.push_back(label);
    }
    std::vector<std::string> action_labels;
    for (const auto& [label, _] : out.action_tables) {
      action_labels.push_back(label);
    }
    // The manifest commits the ingest: every artifact it references is
    // already complete and durable on disk when this rename lands.
    SVQ_RETURN_NOT_OK(WriteManifest(options.directory, out, object_labels,
                                    action_labels, options.env));
  }

  // Selectivity statistics ride with the artifacts: posting-list interval
  // counts, covered-clip densities, and table sizes, derived once here so
  // the planner never touches the tables on the query path.
  out.ComputeStatistics();

  out.ingest_inference.units =
      (tracker->stats().units - tracker_base.units) +
      (recognizer->stats().units - recognizer_base.units);
  out.ingest_inference.simulated_ms =
      (tracker->stats().simulated_ms - tracker_base.simulated_ms) +
      (recognizer->stats().simulated_ms - recognizer_base.simulated_ms);
  return out;
}

namespace {

/// Quarantines a corrupt artifact: the file is renamed aside to
/// `<file>.quarantined` (best effort) so a restart does not keep serving —
/// or re-tripping over — damaged bytes, and an operator can inspect them.
/// Only Corruption quarantines; a missing file stays a plain IOError.
Status QuarantineIfCorrupt(Status status, const std::string& file_path) {
  if (!status.IsCorruption()) return status;
  std::error_code ec;
  std::filesystem::rename(file_path, file_path + ".quarantined", ec);
  if (ec) return status;
  return Status::Corruption(status.message() + " (quarantined to " +
                            file_path + ".quarantined)");
}

}  // namespace

Result<IngestedVideo> OpenIngestedVideo(const std::string& directory) {
  const std::string manifest_path = directory + "/manifest.svqm";
  std::vector<std::string> object_labels;
  std::vector<std::string> action_labels;
  auto parse_manifest = [&]() -> Result<IngestedVideo> {
    SVQ_ASSIGN_OR_RETURN(const std::string file,
                         io::ReadFileToString(manifest_path));
    std::string_view payload(file);
    {
      io::ByteReader magic_reader(payload);
      uint32_t magic = 0;
      if (!magic_reader.Read(&magic)) {
        return Status::Corruption("truncated manifest in " + directory);
      }
      if (magic == kManifestMagicV2) {
        SVQ_ASSIGN_OR_RETURN(payload,
                             io::StripChecksumFooter(file, manifest_path));
      } else if (magic != kManifestMagicV1) {
        return Status::Corruption("bad manifest magic in " + directory);
      }
    }
    io::ByteReader in(payload);
    uint32_t magic = 0;
    in.Read(&magic);  // already validated
    IngestedVideo out;
    int32_t frames_per_shot = 0;
    int32_t shots_per_clip = 0;
    std::string name;
    if (!in.ReadLengthPrefixedString(&name, kMaxLabelLength) ||
        !in.Read(&out.id) || !in.Read(&frames_per_shot) ||
        !in.Read(&shots_per_clip) || !in.Read(&out.layout.fps) ||
        !in.Read(&out.num_frames) || !in.Read(&out.num_clips)) {
      return Status::Corruption("truncated manifest in " + directory);
    }
    out.name = std::move(name);
    out.layout.frames_per_shot = frames_per_shot;
    out.layout.shots_per_clip = shots_per_clip;
    if (const Status layout = out.layout.Validate(); !layout.ok()) {
      // A manifest carrying an impossible layout is damage, not a caller
      // mistake: surface it on the corruption path so it quarantines.
      return Status::Corruption("invalid layout in manifest in " +
                                directory + ": " + layout.message());
    }
    auto read_labels = [&](std::vector<std::string>* labels) {
      uint64_t count = 0;
      // Bound the untrusted count: each label costs at least its 8-byte
      // length prefix, so more labels than remaining/8 cannot exist.
      if (!in.Read(&count) || count > kMaxManifestLabels ||
          count > in.remaining() / sizeof(uint64_t)) {
        return false;
      }
      for (uint64_t i = 0; i < count; ++i) {
        std::string label;
        if (!in.ReadLengthPrefixedString(&label, kMaxLabelLength)) {
          return false;
        }
        labels->push_back(std::move(label));
      }
      return true;
    };
    if (!read_labels(&object_labels) || !read_labels(&action_labels)) {
      return Status::Corruption("truncated label lists in " + directory);
    }
    return out;
  };

  Result<IngestedVideo> parsed = parse_manifest();
  if (!parsed.ok()) {
    return QuarantineIfCorrupt(parsed.status(), manifest_path);
  }
  IngestedVideo out = std::move(parsed).value();

  for (const std::string& label : object_labels) {
    const std::string path =
        directory + "/obj_" + SanitizeLabel(label) + ".svqt";
    auto table = storage::DiskScoreTable::Open(path);
    if (!table.ok()) return QuarantineIfCorrupt(table.status(), path);
    out.object_tables.emplace(label, std::move(table).value());
  }
  for (const std::string& label : action_labels) {
    const std::string path =
        directory + "/act_" + SanitizeLabel(label) + ".svqt";
    auto table = storage::DiskScoreTable::Open(path);
    if (!table.ok()) return QuarantineIfCorrupt(table.status(), path);
    out.action_tables.emplace(label, std::move(table).value());
  }
  {
    const std::string path = directory + "/object_sequences.svqs";
    auto sequences = storage::SequenceStore::Load(path);
    if (!sequences.ok()) {
      return QuarantineIfCorrupt(sequences.status(), path);
    }
    out.object_sequences = std::move(sequences).value();
  }
  {
    const std::string path = directory + "/action_sequences.svqs";
    auto sequences = storage::SequenceStore::Load(path);
    if (!sequences.ok()) {
      return QuarantineIfCorrupt(sequences.status(), path);
    }
    out.action_sequences = std::move(sequences).value();
  }
  // Statistics are pure derivations of the artifacts, so a reopened
  // directory reconstructs them instead of persisting a separate file.
  out.ComputeStatistics();
  return out;
}

}  // namespace svq::core
