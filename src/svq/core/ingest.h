#ifndef SVQ_CORE_INGEST_H_
#define SVQ_CORE_INGEST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/core/query.h"
#include "svq/models/action_recognizer.h"
#include "svq/models/inference_stats.h"
#include "svq/models/object_tracker.h"
#include "svq/runtime/runtime_options.h"
#include "svq/storage/score_table.h"
#include "svq/storage/statistics.h"
#include "svq/video/interval_set.h"
#include "svq/video/synthetic_video.h"

namespace svq::io {
class Env;
}  // namespace svq::io

namespace svq::core {

/// Computes the positive clips of one label from its full per-occurrence-
/// unit prediction-indicator stream, using the SVAQD machinery (kernel
/// background estimate + scan-statistic critical value per clip). This is
/// the §4.2 "Individual Sequences" step, run per object/action type at
/// ingestion time. The returned set lives in the clip domain.
Result<video::IntervalSet> ComputePositiveClips(
    const std::vector<uint8_t>& unit_events, int units_per_clip, double alpha,
    double reference_windows, double bandwidth, double initial_p,
    int64_t merge_gap_clips = 1);

/// Ingestion-phase configuration.
struct IngestOptions {
  /// Score thresholds for the prediction indicators.
  double object_threshold = 0.5;
  double action_threshold = 0.5;
  /// Scan-statistic parameters for positive-clip determination.
  double alpha = 0.05;
  double reference_windows = 200.0;
  double object_bandwidth = 4096.0;
  double action_bandwidth = 512.0;
  double initial_object_p = 1e-4;
  double initial_action_p = 1e-3;
  /// Gap filling for the individual sequences (see
  /// OnlineConfig::merge_gap_clips).
  int64_t merge_gap_clips = 1;

  enum class TableBackend {
    kMemory,  ///< clip score tables held in RAM
    kDisk,    ///< clip score tables written to and served from files
  };
  TableBackend backend = TableBackend::kMemory;
  /// Directory for table/sequence files; required for kDisk.
  std::string directory;
  /// I/O environment for every kDisk artifact write (tables, sequences,
  /// manifest). nullptr means io::Env::Default(); tests pass a
  /// FaultInjectionEnv to simulate crashes mid-ingest.
  io::Env* env = nullptr;

  /// Parallel-execution knobs for the post-inference ingest phases
  /// (per-clip score aggregation, per-type sequence determination, per-type
  /// table construction). Model inference itself always runs in stream
  /// order: trackers are stateful by contract. The default of one thread is
  /// the sequential reference path with byte-identical outputs.
  runtime::RuntimeOptions runtime;

  Status Validate() const;
};

/// Wall-clock breakdown of one IngestVideo call, phase by phase, plus the
/// pool counters of its parallel regions.
struct IngestRunStats {
  /// Sequential model scoring (tracker + recognizer over the stream).
  double inference_ms = 0.0;
  /// Parallel per-clip aggregation of predictions into score/event arrays.
  double scoring_ms = 0.0;
  /// Parallel per-type positive-sequence determination (SVAQD machinery).
  double sequences_ms = 0.0;
  /// Parallel per-type score-table construction.
  double tables_ms = 0.0;
  runtime::RuntimeStats runtime;
};

/// Everything the ingestion phase materializes for one video (paper §4.2):
/// per-type clip score tables (sorted by score) and per-type individual
/// sequences, for every type in the deployed models' vocabularies.
struct IngestedVideo {
  video::VideoId id = video::kInvalidVideoId;
  std::string name;
  video::VideoLayout layout;
  int64_t num_frames = 0;
  int64_t num_clips = 0;

  std::map<std::string, std::unique_ptr<storage::ScoreTable>> object_tables;
  std::map<std::string, std::unique_ptr<storage::ScoreTable>> action_tables;
  /// `P_{o_i}` per object type, clip domain.
  std::map<std::string, video::IntervalSet> object_sequences;
  /// `P_{a_j}` per action type, clip domain.
  std::map<std::string, video::IntervalSet> action_sequences;
  /// Per-type selectivity statistics, derived from the tables and posting
  /// lists above at ingest/open time (docs/planner.md). Immutable with the
  /// rest of the artifact set.
  std::map<std::string, storage::TypeStatistics> object_statistics;
  std::map<std::string, storage::TypeStatistics> action_statistics;

  /// Model inference spent during ingestion (one-time cost).
  models::InferenceStats ingest_inference;
  /// Phase timings and pool counters of the ingest run that built this.
  IngestRunStats ingest_stats;

  /// Table lookup helpers; nullptr when the type was never detected.
  const storage::ScoreTable* ObjectTable(const std::string& label) const;
  const storage::ScoreTable* ActionTable(const std::string& label) const;
  const video::IntervalSet* ObjectSequences(const std::string& label) const;
  const video::IntervalSet* ActionSequences(const std::string& label) const;
  /// Statistics lookup helpers; nullptr when the type was never detected
  /// (the planner treats a missing type as zero selectivity).
  const storage::TypeStatistics* ObjectStatistics(
      const std::string& label) const;
  const storage::TypeStatistics* ActionStatistics(
      const std::string& label) const;

  /// (Re)derives object_statistics / action_statistics from the tables and
  /// posting lists. Called by IngestVideo and OpenIngestedVideo once the
  /// artifacts are in place; cheap (interval counts and table sizes only).
  void ComputeStatistics();
};

/// Runs the ingestion phase over one video with the given tracker and
/// action recognizer. Query independent: processes every type in the model
/// vocabularies. With the kDisk backend, score tables, sequence files and a
/// manifest are written under `options.directory` and served from disk
/// afterwards.
Result<IngestedVideo> IngestVideo(
    const std::shared_ptr<const video::SyntheticVideo>& video,
    video::VideoId id, models::ObjectTracker* tracker,
    models::ActionRecognizer* recognizer, const IngestOptions& options);

/// Reopens a directory previously written by a kDisk ingestion: loads the
/// manifest, opens every score table, and loads the individual sequences —
/// no model inference. This is how a repository restarts without paying the
/// (hours-long) ingestion again. Errors: IOError, Corruption.
Result<IngestedVideo> OpenIngestedVideo(const std::string& directory);

}  // namespace svq::core

#endif  // SVQ_CORE_INGEST_H_
