#include "svq/core/engine.h"

#include <algorithm>
#include <filesystem>
#include <future>
#include <thread>

namespace svq::core {

namespace {

/// Per-video ingest options: with the disk backend, every video gets its
/// own subdirectory so table files never collide across videos.
Result<IngestOptions> PerVideoOptions(const IngestOptions& base,
                                      const std::string& video_name) {
  if (base.backend != IngestOptions::TableBackend::kDisk) return base;
  IngestOptions options = base;
  options.directory = base.directory + "/" + video_name;
  std::error_code ec;
  std::filesystem::create_directories(options.directory, ec);
  if (ec) {
    return Status::IOError("create directory failed: " + options.directory +
                           ": " + ec.message());
  }
  return options;
}

}  // namespace

VideoQueryEngine::VideoQueryEngine(models::ModelSuite suite,
                                   OnlineConfig online_config,
                                   IngestOptions ingest_options)
    : suite_(std::move(suite)),
      online_config_(online_config),
      ingest_options_(std::move(ingest_options)) {}

Result<video::VideoId> VideoQueryEngine::AddVideo(
    std::shared_ptr<const video::SyntheticVideo> video) {
  if (video == nullptr) {
    return Status::InvalidArgument("video must be set");
  }
  auto [it, inserted] = videos_.try_emplace(video->name());
  if (!inserted) {
    return Status::AlreadyExists("video '" + video->name() +
                                 "' already registered");
  }
  it->second.video = std::move(video);
  it->second.id = next_id_++;
  return it->second.id;
}

Result<VideoQueryEngine::Entry*> VideoQueryEngine::FindEntry(
    const std::string& video_name) {
  auto it = videos_.find(video_name);
  if (it == videos_.end()) {
    return Status::NotFound("video '" + video_name + "' is not registered");
  }
  return &it->second;
}

Status VideoQueryEngine::Ingest(const std::string& video_name) {
  auto entry_result = FindEntry(video_name);
  if (!entry_result.ok()) return entry_result.status();
  Entry* entry = *entry_result;
  if (entry->ingested.has_value()) {
    return Status::AlreadyExists("video '" + video_name +
                                 "' is already ingested");
  }
  // Ingestion is query independent: models process their full vocabulary.
  auto options = PerVideoOptions(ingest_options_, video_name);
  if (!options.ok()) return options.status();
  models::ModelSet models =
      models::MakeModelSet(entry->video, suite_, /*query_object_labels=*/{},
                           /*query_action_labels=*/{});
  auto ingested = IngestVideo(entry->video, entry->id, models.tracker.get(),
                              models.recognizer.get(), *options);
  if (!ingested.ok()) return ingested.status();
  entry->ingested = std::move(ingested).value();
  return Status::OK();
}

Status VideoQueryEngine::IngestAll(int parallelism) {
  std::vector<Entry*> pending;
  for (auto& [name, entry] : videos_) {
    if (!entry.ingested.has_value()) pending.push_back(&entry);
  }
  if (pending.empty()) return Status::OK();
  if (parallelism <= 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  // Videos are independent: per-video model instances, per-video outputs.
  // Ingest in bounded waves; each task fills its own slot.
  Status first_error;
  for (size_t wave = 0; wave < pending.size();
       wave += static_cast<size_t>(parallelism)) {
    const size_t end = std::min(pending.size(),
                                wave + static_cast<size_t>(parallelism));
    std::vector<std::future<Result<IngestedVideo>>> futures;
    for (size_t i = wave; i < end; ++i) {
      Entry* entry = pending[i];
      futures.push_back(std::async(std::launch::async, [this, entry]() {
        auto options = PerVideoOptions(ingest_options_, entry->video->name());
        if (!options.ok()) {
          return Result<IngestedVideo>(options.status());
        }
        models::ModelSet models = models::MakeModelSet(
            entry->video, suite_, /*query_object_labels=*/{},
            /*query_action_labels=*/{});
        return IngestVideo(entry->video, entry->id, models.tracker.get(),
                           models.recognizer.get(), *options);
      }));
    }
    for (size_t i = wave; i < end; ++i) {
      Result<IngestedVideo> result = futures[i - wave].get();
      if (!result.ok()) {
        if (first_error.ok()) first_error = result.status();
        continue;
      }
      pending[i]->ingested = std::move(result).value();
    }
  }
  return first_error;
}

const IngestedVideo* VideoQueryEngine::Ingested(
    const std::string& video_name) const {
  auto it = videos_.find(video_name);
  if (it == videos_.end() || !it->second.ingested.has_value()) return nullptr;
  return &*it->second.ingested;
}

Result<OnlineResult> VideoQueryEngine::ExecuteOnline(
    const Query& query, const std::string& video_name,
    OnlineEngine::Mode mode) {
  SVQ_ASSIGN_OR_RETURN(Entry * entry, FindEntry(video_name));
  models::ModelSet models = models::MakeModelSet(
      entry->video, suite_, query.AllObjectLabels(), query.AllActions());
  SVQ_ASSIGN_OR_RETURN(
      std::unique_ptr<OnlineEngine> engine,
      OnlineEngine::Create(mode, query, online_config_,
                           entry->video->layout(), models.detector.get(),
                           models.recognizer.get()));
  video::SyntheticVideoStream stream(entry->video, entry->id);
  return engine->Run(stream);
}

Result<TopKResult> VideoQueryEngine::ExecuteTopK(
    const Query& query, const std::string& video_name, int k,
    OfflineAlgorithm algorithm, const OfflineOptions& options) {
  SVQ_ASSIGN_OR_RETURN(Entry * entry, FindEntry(video_name));
  if (!entry->ingested.has_value()) {
    return Status::FailedPrecondition("video '" + video_name +
                                      "' has not been ingested");
  }
  const AdditiveScoring scoring;
  switch (algorithm) {
    case OfflineAlgorithm::kRvaq:
      return RunRvaq(*entry->ingested, query, k, scoring, options);
    case OfflineAlgorithm::kRvaqNoSkip:
      return RunRvaqNoSkip(*entry->ingested, query, k, scoring,
                           options.cost_model);
    case OfflineAlgorithm::kFagin:
      return RunFagin(*entry->ingested, query, k, scoring,
                      options.cost_model);
    case OfflineAlgorithm::kPqTraverse:
      return RunPqTraverse(*entry->ingested, query, k, scoring,
                           options.cost_model);
  }
  return Status::InvalidArgument("unknown offline algorithm");
}

Result<RepositoryResult> VideoQueryEngine::ExecuteTopKAll(
    const Query& query, int k, const OfflineOptions& options) {
  std::vector<const IngestedVideo*> ingested;
  for (const auto& [name, entry] : videos_) {
    if (entry.ingested.has_value()) ingested.push_back(&*entry.ingested);
  }
  if (ingested.empty()) {
    return Status::FailedPrecondition("no ingested videos in the repository");
  }
  const AdditiveScoring scoring;
  return RunRepositoryTopK(ingested, query, k, scoring, options);
}

}  // namespace svq::core
