#include "svq/core/engine.h"

#include <algorithm>
#include <filesystem>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "svq/cache/fingerprint.h"
#include "svq/observability/trace.h"

namespace svq::core {

namespace {

const char* AlgorithmSpanName(OfflineAlgorithm algorithm) {
  switch (algorithm) {
    case OfflineAlgorithm::kRvaq:
      return "rvaq";
    case OfflineAlgorithm::kRvaqNoSkip:
      return "rvaq_noskip";
    case OfflineAlgorithm::kFagin:
      return "fagin";
    case OfflineAlgorithm::kPqTraverse:
      return "pq_traverse";
  }
  return "offline";
}

/// Per-video ingest options: with the disk backend, every video gets its
/// own subdirectory so table files never collide across videos.
Result<IngestOptions> PerVideoOptions(const IngestOptions& base,
                                      const std::string& video_name) {
  if (base.backend != IngestOptions::TableBackend::kDisk) return base;
  IngestOptions options = base;
  options.directory = base.directory + "/" + video_name;
  std::error_code ec;
  std::filesystem::create_directories(options.directory, ec);
  if (ec) {
    return Status::IOError("create directory failed: " + options.directory +
                           ": " + ec.message());
  }
  return options;
}

/// Merges an execution's accounting into the context's optional per-query
/// sinks. Each context belongs to one query, so the sinks are written from
/// exactly one thread.
void DrainToSinks(const ExecutionContext& context,
                  const OfflineRunStats& stats) {
  if (context.storage_sink() != nullptr) {
    context.storage_sink()->Merge(stats.storage);
  }
  if (context.runtime_sink() != nullptr) {
    context.runtime_sink()->Merge(stats.runtime);
  }
}

/// Statement fingerprint for the top-K result cache: the canonicalized
/// query (labels sorted within each conjunctive list — the binder produces
/// this order, and Intersect-based candidate generation is order
/// independent), the target video, the algorithm, and every option that
/// changes the produced sequences or bounds. K is deliberately excluded:
/// an exact entry computed at K serves any K' <= K (CachedTopK::Serves).
uint64_t ResultCacheKey(const Query& query, const std::string& video_name,
                        OfflineAlgorithm algorithm,
                        const OfflineOptions& options) {
  svq::cache::Fingerprint fp;
  fp.Mix("result").Mix(video_name);
  fp.Mix("act").Mix(query.action);
  std::vector<std::string> extras = query.extra_actions;
  std::sort(extras.begin(), extras.end());
  for (const std::string& extra : extras) fp.Mix("xa").Mix(extra);
  std::vector<std::string> objects = query.objects;
  std::sort(objects.begin(), objects.end());
  for (const std::string& object : objects) fp.Mix("obj").Mix(object);
  // Disjunctions and relationships are rejected by the offline path today,
  // but mix them anyway so the key stays correct if that ever changes.
  for (const auto& group : query.object_disjunctions) {
    fp.Mix("disj");
    for (const std::string& label : group) fp.Mix(label);
  }
  for (const Relationship& rel : query.relationships) {
    fp.Mix("rel").Mix(static_cast<int>(rel.op)).Mix(rel.subject)
        .Mix(rel.object);
  }
  fp.Mix("alg").Mix(static_cast<int>(algorithm));
  fp.Mix(options.enable_skip).Mix(options.compute_exact_scores);
  return fp.value();
}

/// A cached entry serving a (possibly smaller) K, converted back to the
/// engine's result type. Stats stay zero: no storage was touched.
TopKResult FromCached(const svq::cache::CachedTopK& cached, int k) {
  TopKResult result;
  const size_t n = std::min(cached.entries.size(), static_cast<size_t>(k));
  result.sequences.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RankedSequence seq;
    seq.clips = cached.entries[i].clips;
    seq.lower_bound = cached.entries[i].lower_bound;
    seq.upper_bound = cached.entries[i].upper_bound;
    result.sequences.push_back(seq);
  }
  return result;
}

std::shared_ptr<const svq::cache::CachedTopK> ToCached(
    const TopKResult& result, int k, const OfflineOptions& options) {
  auto cached = std::make_shared<svq::cache::CachedTopK>();
  cached->computed_k = k;
  cached->exact = options.compute_exact_scores;
  cached->entries.reserve(result.sequences.size());
  for (const RankedSequence& seq : result.sequences) {
    svq::cache::CachedTopK::Entry entry;
    entry.clips = seq.clips;
    entry.lower_bound = seq.lower_bound;
    entry.upper_bound = seq.upper_bound;
    cached->entries.push_back(entry);
  }
  return cached;
}

}  // namespace

const CatalogSnapshot::Entry* CatalogSnapshot::Find(
    const std::string& video_name) const {
  auto it = videos.find(video_name);
  return it == videos.end() ? nullptr : &it->second;
}

Result<OnlineResult> ExecuteOnlineOn(const SnapshotPtr& snapshot,
                                     const Query& query,
                                     const std::string& video_name,
                                     OnlineEngine::Mode mode,
                                     const ExecutionContext& context,
                                     const models::ModelSuite* suite_override) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("snapshot must be set");
  }
  // Gate before model construction: an already-expired context must not
  // pay for (or run) any inference.
  SVQ_RETURN_NOT_OK(context.Check());
  const CatalogSnapshot::Entry* entry = snapshot->Find(video_name);
  if (entry == nullptr) {
    return Status::NotFound("video '" + video_name + "' is not registered");
  }
  if (entry->video == nullptr) {
    // Registered via AddIngested: artifacts only, no raw frames to run
    // models over.
    return Status::FailedPrecondition(
        "video '" + video_name +
        "' was opened from ingested artifacts; online execution needs the "
        "raw video");
  }
  const models::ModelSuite& suite =
      suite_override != nullptr ? *suite_override : snapshot->suite;
  observability::TraceSpan execute_span(context.trace(), "execute");
  models::ModelSet models = models::MakeModelSet(
      entry->video, suite, query.AllObjectLabels(), query.AllActions());
  SVQ_ASSIGN_OR_RETURN(
      std::unique_ptr<OnlineEngine> engine,
      OnlineEngine::Create(mode, query, snapshot->online_config,
                           entry->video->layout(), models.detector.get(),
                           models.recognizer.get(), context,
                           snapshot->cache != nullptr
                               ? snapshot->cache->kcrit_table()
                               : nullptr));
  video::SyntheticVideoStream stream(entry->video, entry->id);
  observability::TraceSpan mode_span(
      context.trace(),
      mode == OnlineEngine::Mode::kSvaq ? "svaq" : "svaqd");
  return engine->Run(stream);
}

Result<TopKResult> ExecuteTopKOn(const SnapshotPtr& snapshot,
                                 const Query& query,
                                 const std::string& video_name, int k,
                                 OfflineAlgorithm algorithm,
                                 const OfflineOptions& options,
                                 const ExecutionContext& context) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("snapshot must be set");
  }
  SVQ_RETURN_NOT_OK(context.Check());
  const CatalogSnapshot::Entry* entry = snapshot->Find(video_name);
  if (entry == nullptr) {
    return Status::NotFound("video '" + video_name + "' is not registered");
  }
  if (entry->ingested == nullptr) {
    return Status::FailedPrecondition("video '" + video_name +
                                      "' has not been ingested");
  }
  const AdditiveScoring scoring;
  observability::TraceSpan execute_span(context.trace(), "execute");

  // Tier-2 result cache with single-flight deduplication (docs/caching.md).
  // The first identical statement to arrive computes; concurrent duplicates
  // wait briefly and re-check instead of redoing storage work. A leader
  // that errors simply releases the flight — followers promote themselves.
  svq::cache::SnapshotCache* cache = snapshot->cache.get();
  const bool use_result_cache =
      cache != nullptr && options.cache.use_result_cache;
  uint64_t result_key = 0;
  svq::cache::SingleFlightLease lease;
  if (use_result_cache) {
    result_key = ResultCacheKey(query, video_name, algorithm, options);
    bool waited = false;
    while (true) {
      if (auto found = cache->LookupResult(result_key)) {
        const svq::cache::CachedTopK& cached = **found;
        if (cached.Serves(k)) {
          observability::TraceSpan hit_span(context.trace(),
                                            "cache.result_hit");
          return FromCached(cached, k);
        }
        // Present but computed at a smaller K (or inexact): recompute —
        // joining the flight would only serve us the same short entry.
        break;
      }
      if (cache->result_flights().Begin(result_key)) {
        lease = svq::cache::SingleFlightLease(&cache->result_flights(),
                                              result_key);
        break;
      }
      SVQ_RETURN_NOT_OK(context.Check());
      if (!waited) {
        waited = true;
        cache->stats()->single_flight_waits.fetch_add(
            1, std::memory_order_relaxed);
      }
      cache->result_flights().WaitBriefly(result_key);
    }
  }

  OfflineOptions exec_options = options;
  exec_options.snapshot_cache = cache;
  observability::TraceSpan algorithm_span(context.trace(),
                                          AlgorithmSpanName(algorithm));
  Result<TopKResult> result = Status::InvalidArgument(
      "unknown offline algorithm");
  switch (algorithm) {
    case OfflineAlgorithm::kRvaq:
      result = RunRvaq(*entry->ingested, query, k, scoring, exec_options,
                       context);
      break;
    case OfflineAlgorithm::kRvaqNoSkip:
      result = RunRvaqNoSkip(*entry->ingested, query, k, scoring,
                             options.cost_model, context);
      break;
    case OfflineAlgorithm::kFagin:
      result = RunFagin(*entry->ingested, query, k, scoring,
                        options.cost_model, context);
      break;
    case OfflineAlgorithm::kPqTraverse:
      result = RunPqTraverse(*entry->ingested, query, k, scoring,
                             options.cost_model, context);
      break;
  }
  if (result.ok()) {
    DrainToSinks(context, result->stats);
    if (use_result_cache) {
      // Insert before the lease releases the flight, so woken followers
      // find the entry on their re-check.
      cache->InsertResult(result_key, ToCached(*result, k, options));
    }
  }
  return result;
}

Result<RepositoryResult> ExecuteTopKAllOn(const SnapshotPtr& snapshot,
                                          const Query& query, int k,
                                          const OfflineOptions& options,
                                          const ExecutionContext& context) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("snapshot must be set");
  }
  SVQ_RETURN_NOT_OK(context.Check());
  std::vector<const IngestedVideo*> ingested;
  for (const auto& [name, entry] : snapshot->videos) {
    if (entry.ingested != nullptr) ingested.push_back(entry.ingested.get());
  }
  if (ingested.empty()) {
    return Status::FailedPrecondition("no ingested videos in the repository");
  }
  const AdditiveScoring scoring;
  // The repository fan-out reuses the per-video RVAQ path, so threading the
  // snapshot cache through here lights up the candidate tier (tier 1) for
  // every video in the sweep. Whole-repository results are not memoized:
  // their K interleaving is cross-video.
  OfflineOptions exec_options = options;
  exec_options.snapshot_cache = snapshot->cache.get();
  Result<RepositoryResult> result =
      RunRepositoryTopK(ingested, query, k, scoring, exec_options, context);
  if (result.ok()) DrainToSinks(context, result->stats);
  return result;
}

VideoQueryEngine::VideoQueryEngine(models::ModelSuite suite,
                                   OnlineConfig online_config,
                                   IngestOptions ingest_options,
                                   svq::cache::CacheOptions cache_options)
    : ingest_options_(std::move(ingest_options)),
      cache_options_(cache_options),
      cache_stats_(std::make_shared<svq::cache::CacheStats>()) {
  auto snapshot = std::make_shared<CatalogSnapshot>();
  snapshot->suite = std::move(suite);
  snapshot->online_config = online_config;
  // Route through Publish so the initial snapshot gets its cache too.
  Publish(std::move(snapshot));
}

SnapshotPtr VideoQueryEngine::Pin() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void VideoQueryEngine::Publish(std::shared_ptr<CatalogSnapshot> next) {
  // Every catalog mutation funnels through here, so attaching a *fresh*
  // SnapshotCache per publish is the entire invalidation story: entries
  // derived from superseded artifacts become unreachable with their
  // snapshot, while queries pinned to the old generation keep their (still
  // correct for that view) cache until the last pin drops.
  if (cache_options_.enabled) {
    next->cache =
        std::make_shared<svq::cache::SnapshotCache>(cache_options_,
                                                    cache_stats_);
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(next);
}

Result<video::VideoId> VideoQueryEngine::AddVideo(
    std::shared_ptr<const video::SyntheticVideo> video) {
  if (video == nullptr) {
    return Status::InvalidArgument("video must be set");
  }
  std::lock_guard<std::mutex> writer(writer_mu_);
  const SnapshotPtr current = Pin();
  if (current->videos.contains(video->name())) {
    return Status::AlreadyExists("video '" + video->name() +
                                 "' already registered");
  }
  auto next = std::make_shared<CatalogSnapshot>(*current);
  const std::string name = video->name();
  CatalogSnapshot::Entry entry;
  entry.video = std::move(video);
  entry.id = next->next_id++;
  const video::VideoId id = entry.id;
  next->videos.emplace(name, std::move(entry));
  Publish(std::move(next));
  return id;
}

Result<video::VideoId> VideoQueryEngine::AddIngested(
    std::shared_ptr<const IngestedVideo> ingested) {
  if (ingested == nullptr) {
    return Status::InvalidArgument("ingested must be set");
  }
  if (ingested->name.empty()) {
    return Status::InvalidArgument("ingested video must carry a name");
  }
  std::lock_guard<std::mutex> writer(writer_mu_);
  const SnapshotPtr current = Pin();
  if (current->videos.contains(ingested->name)) {
    return Status::AlreadyExists("video '" + ingested->name +
                                 "' already registered");
  }
  auto next = std::make_shared<CatalogSnapshot>(*current);
  const std::string name = ingested->name;
  CatalogSnapshot::Entry entry;
  entry.id = ingested->id;
  // Keep future AddVideo ids disjoint from the reopened artifact's id.
  next->next_id = std::max(next->next_id, ingested->id + 1);
  entry.ingested = std::move(ingested);
  const video::VideoId id = entry.id;
  next->videos.emplace(name, std::move(entry));
  Publish(std::move(next));
  return id;
}

Result<IngestedVideo> VideoQueryEngine::IngestOne(
    const CatalogSnapshot& snapshot,
    const CatalogSnapshot::Entry& entry) const {
  SVQ_ASSIGN_OR_RETURN(
      const IngestOptions options,
      PerVideoOptions(ingest_options_, entry.video->name()));
  // Ingestion is query independent: models process their full vocabulary.
  models::ModelSet models =
      models::MakeModelSet(entry.video, snapshot.suite,
                           /*query_object_labels=*/{},
                           /*query_action_labels=*/{});
  return IngestVideo(entry.video, entry.id, models.tracker.get(),
                     models.recognizer.get(), options);
}

Status VideoQueryEngine::Ingest(const std::string& video_name) {
  // The writer mutex is held across the ingestion compute: other *writers*
  // queue behind it, but queries keep executing against the previous
  // snapshot throughout and observe the new artifacts only after the final
  // Publish.
  std::lock_guard<std::mutex> writer(writer_mu_);
  const SnapshotPtr current = Pin();
  const CatalogSnapshot::Entry* entry = current->Find(video_name);
  if (entry == nullptr) {
    return Status::NotFound("video '" + video_name + "' is not registered");
  }
  if (entry->ingested != nullptr) {
    return Status::AlreadyExists("video '" + video_name +
                                 "' is already ingested");
  }
  SVQ_ASSIGN_OR_RETURN(IngestedVideo ingested, IngestOne(*current, *entry));
  auto next = std::make_shared<CatalogSnapshot>(*current);
  next->videos[video_name].ingested =
      std::make_shared<const IngestedVideo>(std::move(ingested));
  Publish(std::move(next));
  return Status::OK();
}

Status VideoQueryEngine::IngestAll(int parallelism) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  const SnapshotPtr current = Pin();
  std::vector<const CatalogSnapshot::Entry*> pending;
  for (const auto& [name, entry] : current->videos) {
    if (entry.ingested == nullptr) pending.push_back(&entry);
  }
  if (pending.empty()) return Status::OK();
  if (parallelism <= 0) {
    parallelism = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  // Videos are independent: per-video model instances, per-video outputs.
  // Ingest in bounded waves; each task fills its own slot.
  std::vector<std::shared_ptr<const IngestedVideo>> results(pending.size());
  Status first_error;
  for (size_t wave = 0; wave < pending.size();
       wave += static_cast<size_t>(parallelism)) {
    const size_t end = std::min(pending.size(),
                                wave + static_cast<size_t>(parallelism));
    std::vector<std::future<Result<IngestedVideo>>> futures;
    for (size_t i = wave; i < end; ++i) {
      const CatalogSnapshot::Entry* entry = pending[i];
      futures.push_back(std::async(std::launch::async, [this, &current,
                                                        entry]() {
        return IngestOne(*current, *entry);
      }));
    }
    for (size_t i = wave; i < end; ++i) {
      Result<IngestedVideo> result = futures[i - wave].get();
      if (!result.ok()) {
        if (first_error.ok()) first_error = result.status();
        continue;
      }
      results[i] =
          std::make_shared<const IngestedVideo>(std::move(result).value());
    }
  }
  // One atomic publish for every success: a reader sees either none or all
  // of this batch (plus whatever partial set an errored batch produced).
  auto next = std::make_shared<CatalogSnapshot>(*current);
  for (size_t i = 0; i < pending.size(); ++i) {
    if (results[i] == nullptr) continue;
    next->videos[pending[i]->video->name()].ingested = std::move(results[i]);
  }
  Publish(std::move(next));
  return first_error;
}

void VideoQueryEngine::set_suite(models::ModelSuite suite) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  auto next = std::make_shared<CatalogSnapshot>(*Pin());
  next->suite = std::move(suite);
  Publish(std::move(next));
}

void VideoQueryEngine::set_online_config(OnlineConfig online_config) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  auto next = std::make_shared<CatalogSnapshot>(*Pin());
  next->online_config = online_config;
  Publish(std::move(next));
}

std::shared_ptr<const IngestedVideo> VideoQueryEngine::Ingested(
    const std::string& video_name) const {
  const SnapshotPtr snapshot = Pin();
  const CatalogSnapshot::Entry* entry = snapshot->Find(video_name);
  return entry == nullptr ? nullptr : entry->ingested;
}

bool VideoQueryEngine::HasVideo(const std::string& video_name) const {
  return Pin()->videos.contains(video_name);
}

models::ModelSuite VideoQueryEngine::suite() const { return Pin()->suite; }

OnlineConfig VideoQueryEngine::online_config() const {
  return Pin()->online_config;
}

Result<OnlineResult> VideoQueryEngine::ExecuteOnline(
    const Query& query, const std::string& video_name,
    OnlineEngine::Mode mode, const ExecutionContext& context) {
  return ExecuteOnlineOn(Pin(), query, video_name, mode, context);
}

Result<TopKResult> VideoQueryEngine::ExecuteTopK(
    const Query& query, const std::string& video_name, int k,
    OfflineAlgorithm algorithm, const OfflineOptions& options,
    const ExecutionContext& context) {
  return ExecuteTopKOn(Pin(), query, video_name, k, algorithm, options,
                       context);
}

Result<RepositoryResult> VideoQueryEngine::ExecuteTopKAll(
    const Query& query, int k, const OfflineOptions& options,
    const ExecutionContext& context) {
  return ExecuteTopKAllOn(Pin(), query, k, options, context);
}

}  // namespace svq::core
