#ifndef SVQ_CORE_ONLINE_ENGINE_H_
#define SVQ_CORE_ONLINE_ENGINE_H_

#include <memory>
#include <vector>

#include "svq/common/execution_context.h"
#include "svq/common/result.h"
#include "svq/core/clip_indicator.h"
#include "svq/core/kcrit_cache.h"
#include "svq/core/query.h"
#include "svq/stats/kernel_estimator.h"
#include "svq/video/interval_set.h"
#include "svq/video/video_stream.h"

namespace svq::core {

/// Aggregate statistics of one online run.
struct OnlineStats {
  int64_t clips_processed = 0;
  int64_t clips_positive = 0;
  /// Clips on which the first stage failed and short-circuited the other
  /// stage's model pass.
  int64_t clips_short_circuited = 0;
  /// Clips evaluated recognizer-first (footnote 5 predicate ordering).
  int64_t clips_actions_first = 0;
  /// Simulated model-inference time accrued during the run (ms).
  double model_ms = 0.0;
  /// Wall-clock time of everything else (the algorithm itself), in ms.
  double algorithm_ms = 0.0;
  /// Critical values in force after the last processed clip, one per frame
  /// predicate (objects, then disjunction groups, then relationships).
  std::vector<int> object_kcrits;
  /// Critical value of the primary action.
  int action_kcrit = 0;
  /// Background probabilities after the last processed clip, one per frame
  /// predicate.
  std::vector<double> object_p;
  /// Background probability of the primary action.
  double action_p = 0.0;
};

/// Result of an online run: the merged result sequences (clip domain,
/// half-open — the paper's `P_q` of Eq. 4) plus run statistics.
struct OnlineResult {
  video::IntervalSet sequences;
  OnlineStats stats;
};

/// Streaming query engine over a video stream: SVAQ (paper Alg. 1, fixed
/// background probabilities) and SVAQD (paper Alg. 3, kernel-estimated
/// probabilities with dynamically refreshed critical values).
///
/// Usage: construct, then either `Run()` a whole stream, or push clips one
/// at a time with `ProcessClip()` and read `sequences()` / `TakeCompleted()`
/// incrementally.
class OnlineEngine {
 public:
  enum class Mode {
    kSvaq,   ///< static background probabilities (Alg. 1)
    kSvaqd,  ///< dynamic background probabilities (Alg. 3)
  };

  /// Validates the query and configuration. Models are borrowed and must
  /// outlive the engine. `context` is copied into the engine and polled at
  /// the top of every ProcessClip, *before* any model inference — an
  /// already-expired deadline fails the first clip without running a model.
  /// `kcrit_table`, when set, is a snapshot-shared L2 for the critical-value
  /// caches: executions on the same snapshot compute each quantized k_crit
  /// entry once between them (see docs/caching.md).
  static Result<std::unique_ptr<OnlineEngine>> Create(
      Mode mode, Query query, OnlineConfig config,
      const video::VideoLayout& layout, models::ObjectDetector* detector,
      models::ActionRecognizer* recognizer,
      const ExecutionContext& context = {},
      std::shared_ptr<svq::cache::KcritTable> kcrit_table = nullptr);

  /// Consumes one clip; updates sequences, estimators and critical values.
  /// Errors: Cancelled/DeadlineExceeded when the execution context expired
  /// (the clip is not processed and no model runs).
  Status ProcessClip(const video::ClipRef& clip);

  /// Drives the whole stream through ProcessClip.
  Result<OnlineResult> Run(video::VideoStream& stream);

  /// Result sequences over everything processed so far.
  const video::IntervalSet& sequences() const { return sequences_; }

  /// Sequences that are conclusively closed (a later negative clip ended
  /// them) and not yet taken; supports live monitoring use cases.
  std::vector<video::Interval> TakeCompleted();

  /// End-of-stream flush: closes the trailing still-open sequence (if any)
  /// and stages it for the next TakeCompleted(). Without this, a sequence
  /// still positive at the final clip is visible in sequences() but never
  /// surfaces through TakeCompleted — incremental consumers (the streaming
  /// dispatcher on feed drain/close) would silently lose it. Idempotent;
  /// the engine may keep processing clips afterwards (a positive clip
  /// simply starts a new run).
  void Finish();

  /// Statistics snapshot (model time is recomputed from the model stats).
  OnlineStats Snapshot() const;

  Mode mode() const { return mode_; }
  const Query& query() const { return query_; }
  const OnlineConfig& config() const { return config_; }

 private:
  OnlineEngine(Mode mode, Query query, OnlineConfig config,
               const video::VideoLayout& layout,
               models::ObjectDetector* detector,
               models::ActionRecognizer* recognizer,
               ExecutionContext context,
               std::shared_ptr<svq::cache::KcritTable> kcrit_table);

  void RefreshCriticalValues();
  void FeedEstimators(const ClipEvaluation& eval);
  /// Feeds the action null-rate estimate from an unconditionally sampled
  /// clip, running the recognizer if query evaluation skipped it (see
  /// OnlineConfig::action_null_sampling_period).
  Status SampleActionBackground(const video::ClipRef& clip,
                                const ClipEvaluation& eval);
  /// Feeds one action's rate and persistence estimators from a shot-event
  /// stream.
  void FeedActionStream(size_t action_index, const std::vector<bool>& events);

  Mode mode_;
  Query query_;
  OnlineConfig config_;
  ExecutionContext context_;
  video::VideoLayout layout_;
  models::ObjectDetector* detector_;
  models::ActionRecognizer* recognizer_;

  std::vector<FramePredicate> frame_predicates_;
  std::vector<std::string> actions_;
  CriticalValueCache frame_cache_;
  CriticalValueCache action_cache_;
  MarkovCriticalValueCache markov_action_cache_;
  std::vector<stats::KernelRateEstimator> frame_estimators_;
  std::vector<stats::KernelRateEstimator> action_estimators_;
  /// Persistence estimators: P(event | previous shot had an event), one per
  /// action (footnote 7 Markov null).
  std::vector<stats::KernelRateEstimator> action_pair_estimators_;
  std::vector<int> frame_kcrits_;
  std::vector<int> action_kcrits_;

  video::IntervalSet sequences_;
  int64_t open_run_begin_ = -1;  // first clip of the current positive run
  int64_t last_positive_clip_ = -1;
  /// Decayed pass-rate estimates per stage, for adaptive predicate
  /// ordering (footnote 5).
  double frame_stage_pass_rate_ = 0.5;
  double action_stage_pass_rate_ = 0.5;
  std::vector<video::Interval> completed_;
  OnlineStats stats_;
  double baseline_model_ms_ = 0.0;
};

}  // namespace svq::core

#endif  // SVQ_CORE_ONLINE_ENGINE_H_
