#include "svq/core/repository.h"

#include <algorithm>
#include <optional>

#include "svq/core/topk_merge.h"
#include "svq/runtime/thread_pool.h"

namespace svq::core {

Result<RepositoryResult> RunRepositoryTopK(
    const std::vector<const IngestedVideo*>& videos, const Query& query,
    int k, const SequenceScoring& scoring, const OfflineOptions& options,
    const ExecutionContext& context) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  SVQ_RETURN_NOT_OK(context.Check());
  for (const IngestedVideo* video : videos) {
    if (video == nullptr) {
      return Status::InvalidArgument("null video in repository list");
    }
  }

  // Per-video RVAQ fan-out (§4.2): videos are independent — each task
  // reads only its own IngestedVideo and writes only its own slot, so the
  // schedule cannot affect any output.
  const int threads = static_cast<int>(
      std::min<int64_t>(options.runtime.ResolvedThreads(),
                        std::max<int64_t>(
                            static_cast<int64_t>(videos.size()), 1)));
  std::vector<std::optional<Result<TopKResult>>> per_video(videos.size());
  // The per-query trace is written without synchronization by contract, so
  // a parallel fan-out must not share it across workers: detach it from the
  // context the tasks see. Deadline/cancellation/sink wiring is preserved.
  ExecutionContext task_context = context;
  if (threads > 1) task_context.set_trace(nullptr);
  const auto run_one = [&](int64_t chunk_begin, int64_t chunk_end) {
    for (int64_t i = chunk_begin; i < chunk_end; ++i) {
      per_video[static_cast<size_t>(i)].emplace(
          RunRvaq(*videos[static_cast<size_t>(i)], query, k, scoring,
                  options, task_context));
    }
  };
  RepositoryResult result;
  result.stats.runtime.threads_used = threads;
  if (threads > 1) {
    runtime::ThreadPool pool(threads);
    // Context-aware fan-out: chunks queued after expiry are skipped
    // outright instead of each starting an RVAQ run just to fail its
    // first iterator step.
    runtime::ParallelFor(&pool, 0, static_cast<int64_t>(videos.size()),
                         /*grain=*/1, run_one, &context);
    result.stats.runtime.Merge(pool.Counters());
  } else {
    run_one(0, static_cast<int64_t>(videos.size()));
  }
  // An expired context leaves skipped (empty) slots behind; report the
  // expiry before the reduction tries to read them.
  SVQ_RETURN_NOT_OK(context.Check());

  // Deterministic reduction in video order after the barrier: the first
  // failure (by position) wins, sequences append in input order, and stats
  // merge in input order — identical to the sequential loop.
  for (size_t i = 0; i < per_video.size(); ++i) {
    if (!per_video[i].has_value()) {
      return Status::Internal("repository fan-out left an unfilled slot");
    }
    Result<TopKResult>& slot = *per_video[i];
    if (!slot.ok()) return slot.status();
    for (RankedSequence& seq : slot->sequences) {
      result.sequences.push_back(
          {videos[i]->id, videos[i]->name, std::move(seq)});
    }
    result.stats.Merge(slot->stats);
  }
  // Merge via the shared score-ordered top-K merge (svq/core/topk_merge.h)
  // so the cluster router's cross-shard gather provably ranks the same way.
  MergeRepositoryTopK(&result.sequences, k);
  return result;
}

}  // namespace svq::core
