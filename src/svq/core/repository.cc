#include "svq/core/repository.h"

#include <algorithm>

namespace svq::core {

Result<RepositoryResult> RunRepositoryTopK(
    const std::vector<const IngestedVideo*>& videos, const Query& query,
    int k, const SequenceScoring& scoring, const OfflineOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  RepositoryResult result;
  for (const IngestedVideo* video : videos) {
    if (video == nullptr) {
      return Status::InvalidArgument("null video in repository list");
    }
    SVQ_ASSIGN_OR_RETURN(TopKResult per_video,
                         RunRvaq(*video, query, k, scoring, options));
    for (const RankedSequence& seq : per_video.sequences) {
      result.sequences.push_back({video->id, video->name, seq});
    }
    result.stats.storage += per_video.stats.storage;
    result.stats.virtual_ms += per_video.stats.virtual_ms;
    result.stats.algorithm_ms += per_video.stats.algorithm_ms;
    result.stats.iterator_calls += per_video.stats.iterator_calls;
  }
  // Merge: certified per-video results rank globally by their (exact or
  // lower-bound) scores; ties break by video then position for stability.
  std::sort(result.sequences.begin(), result.sequences.end(),
            [](const RepositoryEntry& a, const RepositoryEntry& b) {
              if (a.sequence.lower_bound != b.sequence.lower_bound) {
                return a.sequence.lower_bound > b.sequence.lower_bound;
              }
              if (a.video_id != b.video_id) return a.video_id < b.video_id;
              return a.sequence.clips.begin < b.sequence.clips.begin;
            });
  if (result.sequences.size() > static_cast<size_t>(k)) {
    result.sequences.resize(static_cast<size_t>(k));
  }
  return result;
}

}  // namespace svq::core
