#ifndef SVQ_CORE_BASELINES_H_
#define SVQ_CORE_BASELINES_H_

#include "svq/common/result.h"
#include "svq/core/rvaq.h"

namespace svq::core {

/// Fagin's Algorithm adapted to sequence results (paper §5.1 "FA"): sorted
/// access in parallel over all queried tables; a clip is *produced* once it
/// has been seen in every table, at which point its full score is resolved
/// with random accesses. Produced clips outside `P_q` are discarded (their
/// accesses are wasted — the source of FA's overhead); the algorithm stops
/// when the score of every sequence in `P_q` is fully computed. `context`
/// is polled once per sorted-access rank, like all the offline loops.
Result<TopKResult> RunFagin(const IngestedVideo& ingested, const Query& query,
                            int k, const SequenceScoring& scoring,
                            const storage::DiskCostModel& cost_model,
                            const ExecutionContext& context = {});

/// The paper's RVAQ-noSkip baseline: RVAQ with the dynamic skip mechanism
/// of §4.3 disabled — conclusively excluded sequences keep being refined at
/// full cost, so the run degenerates to resolving every candidate clip.
/// (The initial `C(X) \ C(P_q)` exclusion is part of setup and stays.)
Result<TopKResult> RunRvaqNoSkip(const IngestedVideo& ingested,
                                 const Query& query, int k,
                                 const SequenceScoring& scoring,
                                 const storage::DiskCostModel& cost_model,
                                 const ExecutionContext& context = {});

/// The paper's Pq-Traverse baseline: reads every clip of every sequence in
/// `P_q` sequentially, computes all exact sequence scores, and returns the
/// K best. Cost is constant in K. `context` is polled once per sequence.
Result<TopKResult> RunPqTraverse(const IngestedVideo& ingested,
                                 const Query& query, int k,
                                 const SequenceScoring& scoring,
                                 const storage::DiskCostModel& cost_model,
                                 const ExecutionContext& context = {});

}  // namespace svq::core

#endif  // SVQ_CORE_BASELINES_H_
