#ifndef SVQ_CORE_REPOSITORY_H_
#define SVQ_CORE_REPOSITORY_H_

#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/core/rvaq.h"

namespace svq::core {

/// A ranked sequence attributed to its source video — the paper's §4.2
/// multi-video setting, where every clip identifier is qualified by a video
/// identifier.
struct RepositoryEntry {
  video::VideoId video_id = video::kInvalidVideoId;
  std::string video_name;
  RankedSequence sequence;
};

struct RepositoryResult {
  /// At most K sequences across all videos, highest score first.
  std::vector<RepositoryEntry> sequences;
  /// Storage accounting summed over the per-video runs.
  OfflineRunStats stats;
};

/// Global top-K over a repository of ingested videos: RVAQ runs per video
/// (each with budget K — the global top-K is contained in the union of the
/// per-video top-Ks) and the certified results merge by score. `context`
/// threads into every per-video RVAQ run and into the fan-out driver
/// itself, so an expired deadline or a fired cancellation token stops the
/// whole fan-out promptly (queued per-video tasks are skipped, running
/// ones unwind at their next iterator step).
Result<RepositoryResult> RunRepositoryTopK(
    const std::vector<const IngestedVideo*>& videos, const Query& query,
    int k, const SequenceScoring& scoring, const OfflineOptions& options,
    const ExecutionContext& context = {});

}  // namespace svq::core

#endif  // SVQ_CORE_REPOSITORY_H_
