#include "svq/core/spatial.h"

namespace svq::core {

bool BoxesSatisfy(RelOp op, const models::BoundingBox& subject,
                  const models::BoundingBox& object) {
  switch (op) {
    case RelOp::kLeftOf:
      return subject.x + subject.width <= object.x;
    case RelOp::kRightOf:
      return object.x + object.width <= subject.x;
    case RelOp::kAbove:
      // y grows downward in image coordinates.
      return subject.y + subject.height <= object.y;
    case RelOp::kBelow:
      return object.y + object.height <= subject.y;
    case RelOp::kOverlaps:
      return subject.x < object.x + object.width &&
             object.x < subject.x + subject.width &&
             subject.y < object.y + object.height &&
             object.y < subject.y + subject.height;
  }
  return false;
}

bool RelationshipHolds(const Relationship& rel,
                       const std::vector<models::ObjectDetection>& detections,
                       double score_threshold) {
  for (const models::ObjectDetection& subject : detections) {
    if (subject.label != rel.subject || subject.score < score_threshold) {
      continue;
    }
    for (const models::ObjectDetection& object : detections) {
      if (object.label != rel.object || object.score < score_threshold) {
        continue;
      }
      if (BoxesSatisfy(rel.op, subject.box, object.box)) return true;
    }
  }
  return false;
}

}  // namespace svq::core
