#include "svq/plan/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace svq::plan {

std::vector<PlanOperator> OrderSweep(
    const std::vector<PredicateLeaf>& intersection) {
  std::vector<PlanOperator> sweep;
  sweep.reserve(intersection.size());
  for (const PredicateLeaf& leaf : intersection) {
    PlanOperator op;
    op.step.label = leaf.label;
    op.step.is_action = leaf.is_action;
    op.stats_known = leaf.stats_known;
    op.selectivity = leaf.stats_known ? leaf.stats.density : 1.0;
    if (leaf.stats_known) op.stats = leaf.stats;
    sweep.push_back(op);
  }
  std::stable_sort(sweep.begin(), sweep.end(),
                   [](const PlanOperator& a, const PlanOperator& b) {
                     if (a.stats_known != b.stats_known) return a.stats_known;
                     if (a.selectivity != b.selectivity) {
                       return a.selectivity < b.selectivity;
                     }
                     return a.step.label < b.step.label;
                   });
  return sweep;
}

void EstimateCardinalities(const LogicalPlan& logical,
                           std::vector<PlanOperator>* sweep,
                           double* estimated_clips,
                           double* estimated_sequences) {
  *estimated_clips = -1.0;
  *estimated_sequences = -1.0;
  if (logical.video_clips < 0 || sweep->empty()) return;
  bool any_known = false;
  for (const PlanOperator& op : *sweep) any_known |= op.stats_known;
  if (!any_known) return;

  // Running clip count under independence: each intersected leaf keeps a
  // `density` fraction of the surviving clips. Leaves without statistics
  // (defensive: on an ingested video every leaf resolves, a never-detected
  // type resolving to density 0) pass clips through at density 1, keeping
  // the estimate an upper bound instead of a guess.
  double clips = static_cast<double>(logical.video_clips);
  double min_intervals = std::numeric_limits<double>::infinity();
  for (PlanOperator& op : *sweep) {
    clips *= op.stats_known ? op.stats.density : 1.0;
    op.estimated_rows = clips;
    if (op.stats_known) {
      min_intervals =
          std::min(min_intervals,
                   static_cast<double>(op.stats.posting_intervals));
    }
  }
  *estimated_clips = clips;

  // The intersection cannot produce more maximal intervals than its
  // sparsest input has (intersecting can split intervals in pathological
  // alignments, but posting lists here are gap-merged and sparse); scale
  // the sparsest list by the probability the other leaves keep a clip.
  double sequences = min_intervals;
  for (const PlanOperator& op : *sweep) {
    if (!op.stats_known) continue;
    if (static_cast<double>(op.stats.posting_intervals) == min_intervals) {
      // Consume the sparsest list once; further equal-sized lists scale.
      min_intervals = -1.0;
      continue;
    }
    sequences *= op.stats.density;
  }
  // At least one sequence whenever clips survive; never more sequences
  // than clips.
  if (clips > 0.0) sequences = std::max(sequences, 1.0);
  *estimated_sequences = std::min(sequences, clips);
}

std::vector<AlgorithmCost> EstimateAlgorithmCosts(
    const LogicalPlan& logical, double estimated_clips,
    double estimated_sequences, const storage::DiskCostModel& disk) {
  std::vector<AlgorithmCost> costs;
  if (estimated_clips < 0.0 || !logical.ranked) return costs;
  const double tables = static_cast<double>(logical.intersection.size());
  const double clips = estimated_clips;
  const double sequences = std::max(estimated_sequences, 0.0);
  const double k = static_cast<double>(std::max<int64_t>(logical.k, 1));

  // Pq-Traverse reads every candidate clip from every table exactly once —
  // the one cost here that is an identity, not an estimate. It wins
  // whenever the candidate set is small enough that exhaustive reads are
  // cheaper than RVAQ's sorted-cursor exploration.
  {
    AlgorithmCost cost;
    cost.algorithm = core::OfflineAlgorithm::kPqTraverse;
    cost.virtual_ms = clips * tables * disk.sequential_read_ms;
    costs.push_back(cost);
  }

  // RVAQ resolves the clips of the k winning sequences exactly (the
  // measured compute_exact_scores configuration) plus a few probes per
  // surviving sequence before the bounds exclude it, each probe paying one
  // random access per table; the sorted cursors that drive the bounds add
  // two cheap sorted steps per resolved clip.
  {
    const double avg_len = sequences > 0.0 ? clips / sequences : 0.0;
    const double resolved = std::min(clips, k * avg_len + 2.0 * sequences);
    AlgorithmCost cost;
    cost.algorithm = core::OfflineAlgorithm::kRvaq;
    cost.virtual_ms = resolved * tables * disk.random_access_ms +
                      resolved * 2.0 * tables * disk.sorted_access_ms;
    costs.push_back(cost);
  }

  // Fagin terminates only once every candidate clip has surfaced on every
  // sorted cursor. Candidate clips sit at uncorrelated ranks, so the
  // deepest of `clips` uniform ranks in a table of R rows is expected at
  // R * clips/(clips+1) — for a sparse candidate set the cursors go nearly
  // the full depth, and every clip surfaced on the way down is resolved
  // with random accesses on the remaining tables (paper §5.1's overhead).
  {
    double max_rows = 0.0;
    double sum_rows = 0.0;
    for (const PredicateLeaf& leaf : logical.intersection) {
      if (!leaf.stats_known) continue;
      max_rows = std::max(max_rows,
                          static_cast<double>(leaf.stats.table_rows));
      sum_rows += static_cast<double>(leaf.stats.table_rows);
    }
    const double depth = max_rows * (clips / (clips + 1.0));
    const double resolved = std::min(depth * tables, sum_rows);
    AlgorithmCost cost;
    cost.algorithm = core::OfflineAlgorithm::kFagin;
    cost.virtual_ms = depth * tables * disk.sorted_access_ms +
                      resolved * tables * disk.random_access_ms;
    costs.push_back(cost);
  }
  return costs;
}

core::OfflineAlgorithm ChooseAlgorithm(
    const std::vector<AlgorithmCost>& costs) {
  core::OfflineAlgorithm best = core::OfflineAlgorithm::kRvaq;
  double best_ms = std::numeric_limits<double>::infinity();
  for (const AlgorithmCost& cost : costs) {
    if (cost.algorithm == core::OfflineAlgorithm::kRvaq) {
      // RVAQ wins ties (<=): certified bounds at equal estimated price.
      if (cost.virtual_ms <= best_ms) {
        best = cost.algorithm;
        best_ms = cost.virtual_ms;
      }
    } else if (cost.virtual_ms < best_ms) {
      best = cost.algorithm;
      best_ms = cost.virtual_ms;
    }
  }
  return best;
}

}  // namespace svq::plan
