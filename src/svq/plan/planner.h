#ifndef SVQ_PLAN_PLANNER_H_
#define SVQ_PLAN_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "svq/common/execution_context.h"
#include "svq/common/result.h"
#include "svq/plan/plan_ir.h"

namespace svq::plan {

/// Process-wide planner accounting, bridged into the server registry as
/// svq_plan_* counters. Relaxed atomics, same discipline as CacheStats;
/// cumulative for the process lifetime, so consumers bridge deltas.
struct PlannerCounters {
  /// Plans produced (cache hits included).
  std::atomic<int64_t> plans_total{0};
  /// Plans served from the snapshot's plan tier.
  std::atomic<int64_t> cache_hits{0};
  /// Auto-selection outcomes (ranked statements planned with kAuto).
  std::atomic<int64_t> auto_rvaq{0};
  std::atomic<int64_t> auto_fagin{0};
  std::atomic<int64_t> auto_pq_traverse{0};
  /// Ranked statements that overrode the algorithm explicitly.
  std::atomic<int64_t> overrides{0};
  /// Estimate-error tracking: executed plans whose actual candidate sizes
  /// were compared against the estimates, and the accumulated absolute
  /// clip-count error in percent of actual (mean error = sum / samples).
  std::atomic<int64_t> estimate_samples{0};
  std::atomic<int64_t> estimate_error_pct_sum{0};

  struct Snapshot {
    int64_t plans_total = 0;
    int64_t cache_hits = 0;
    int64_t auto_rvaq = 0;
    int64_t auto_fagin = 0;
    int64_t auto_pq_traverse = 0;
    int64_t overrides = 0;
    int64_t estimate_samples = 0;
    int64_t estimate_error_pct_sum = 0;
  };

  Snapshot Read() const {
    Snapshot s;
    s.plans_total = plans_total.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.auto_rvaq = auto_rvaq.load(std::memory_order_relaxed);
    s.auto_fagin = auto_fagin.load(std::memory_order_relaxed);
    s.auto_pq_traverse = auto_pq_traverse.load(std::memory_order_relaxed);
    s.overrides = overrides.load(std::memory_order_relaxed);
    s.estimate_samples = estimate_samples.load(std::memory_order_relaxed);
    s.estimate_error_pct_sum =
        estimate_error_pct_sum.load(std::memory_order_relaxed);
    return s;
  }
};

PlannerCounters& GlobalPlannerCounters();

/// Plans one bound statement against a pinned snapshot: builds the logical
/// plan from the query and the snapshot's ingest-time statistics, lowers
/// it through the cost model (sweep ordering, cardinality estimates,
/// algorithm selection), and returns the immutable physical plan. Planning
/// never fails on catalog state — an unregistered or un-ingested video
/// yields a plan without estimates (EXPLAIN renders it; ranked execution
/// fails later exactly as before). `snapshot` may be null (the deprecated
/// engine-less EXPLAIN path); the plan then carries no catalog facts.
///
/// Plans are memoized on the snapshot's plan tier keyed by the statement
/// fingerprint (labels canonicalized, k, requested algorithm, option bits)
/// unless `offline.cache.use_plan_cache` is off. Trace spans: `lower` and
/// `cost` under the caller's current span, `plan.cache_hit` on a hit.
Result<std::shared_ptr<const PhysicalPlan>> PlanQuery(
    const core::SnapshotPtr& snapshot, const core::Query& query,
    const std::string& video, bool ranked, int64_t k,
    AlgorithmChoice requested, const core::OfflineOptions& offline,
    const ExecutionContext& context = {});

/// Folds one executed run's actual candidate sizes into the global
/// estimate-error counters. Call with the stats of a genuinely executed
/// run (cache hits carry zero stats and are skipped automatically).
void RecordEstimateActuals(const PhysicalPlan& plan,
                           const core::OfflineRunStats& stats);

}  // namespace svq::plan

#endif  // SVQ_PLAN_PLANNER_H_
