#ifndef SVQ_PLAN_PLAN_IR_H_
#define SVQ_PLAN_PLAN_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "svq/cache/query_cache.h"
#include "svq/core/engine.h"
#include "svq/core/rvaq.h"
#include "svq/storage/statistics.h"

namespace svq::plan {

/// Statement-level algorithm request. The historical
/// StatementOptions::algorithm knob hard-picked a core::OfflineAlgorithm;
/// it is now an *override* — the default kAuto lets the cost model choose
/// per statement. kRvaqNoSkip exists only as an explicit override: it is a
/// paper baseline, strictly dominated by kRvaq, and the cost model never
/// selects it.
enum class AlgorithmChoice { kAuto, kRvaq, kRvaqNoSkip, kFagin, kPqTraverse };

const char* AlgorithmChoiceName(AlgorithmChoice choice);
const char* AlgorithmName(core::OfflineAlgorithm algorithm);

/// The non-kAuto choices map 1:1 onto execution algorithms.
core::OfflineAlgorithm ToAlgorithm(AlgorithmChoice choice);

/// One conjunctive predicate of the statement, resolved against the pinned
/// snapshot: the label, which posting-list family it lives in, and — when
/// the source video is ingested and the type was detected — its ingest-time
/// selectivity statistics.
struct PredicateLeaf {
  std::string label;
  bool is_action = false;
  /// The statement's primary action (act='...'), kept distinguishable
  /// because RVAQ scores it on the g_act side.
  bool is_primary = false;
  /// False when the video is not ingested in this snapshot or the type was
  /// never detected (the planner then treats the leaf as unknown / zero
  /// selectivity respectively — see stats.density).
  bool stats_known = false;
  storage::TypeStatistics stats;
};

/// What the binder's output means to the planner: the n-ary intersection
/// of predicate leaves plus the catalog facts that price it. Disjunction
/// groups and relationships are carried for rendering — the offline path
/// rejects them, the online path evaluates them per clip without plan
/// choices to make.
struct LogicalPlan {
  std::string video;
  bool ranked = false;
  int64_t k = 0;
  std::vector<PredicateLeaf> intersection;
  std::vector<std::vector<std::string>> disjunction_groups;
  int64_t num_relationships = 0;
  /// Snapshot facts about the source video.
  bool video_registered = false;
  bool video_ingested = false;
  /// Clip count of the ingested video; -1 when not ingested.
  int64_t video_clips = -1;
};

/// One physical operator: intersect a posting list into the running
/// candidate set, annotated with the cost model's cardinality estimates.
struct PlanOperator {
  core::SweepStep step;
  /// The leaf's selectivity (posting-list density); 1.0 when unknown.
  double selectivity = 1.0;
  bool stats_known = false;
  /// Copy of the leaf's statistics (zeroed when !stats_known).
  storage::TypeStatistics stats;
  /// Estimated clips in the running intersection *after* this operator
  /// (independence assumption); -1 when no statistics were available.
  double estimated_rows = -1.0;
};

/// Cost-model verdict for one candidate algorithm, in the virtual-ms
/// currency of storage::DiskCostModel.
struct AlgorithmCost {
  core::OfflineAlgorithm algorithm = core::OfflineAlgorithm::kRvaq;
  double virtual_ms = 0.0;
};

/// The lowered, executable plan. Immutable once planned; cached per
/// statement fingerprint on the snapshot's plan tier (a snapshot's
/// statistics are immutable, so its plans never go stale — they die with
/// the snapshot generation, like every cache tier).
struct PhysicalPlan : public svq::cache::CachedPlan {
  std::string video;
  bool ranked = false;
  int64_t k = 0;
  AlgorithmChoice requested = AlgorithmChoice::kAuto;
  /// The algorithm execution will run (resolved: never "auto").
  core::OfflineAlgorithm algorithm = core::OfflineAlgorithm::kRvaq;
  /// Whether `algorithm` came from the cost model rather than an override.
  bool auto_selected = false;
  /// Interval-sweep intersection, most-selective-first. Empty for
  /// streaming statements.
  std::vector<PlanOperator> sweep;
  /// Estimated size of the final candidate set P_q; -1 when unknown.
  double estimated_candidate_clips = -1.0;
  double estimated_candidate_sequences = -1.0;
  /// Per-algorithm cost estimates the selection compared (empty when the
  /// statistics were unavailable or the statement is streaming).
  std::vector<AlgorithmCost> costs;
  /// The logical plan this was lowered from (kept for EXPLAIN rendering).
  LogicalPlan logical;
  /// Statement fingerprint this plan is cached under (0 = not cached).
  uint64_t fingerprint = 0;

  /// The sweep order in core terms, ready for OfflineOptions::sweep_order.
  std::vector<core::SweepStep> SweepOrder() const {
    std::vector<core::SweepStep> order;
    order.reserve(sweep.size());
    for (const PlanOperator& op : sweep) order.push_back(op.step);
    return order;
  }

  size_t ByteSize() const override;
};

}  // namespace svq::plan

#endif  // SVQ_PLAN_PLAN_IR_H_
