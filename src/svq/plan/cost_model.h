#ifndef SVQ_PLAN_COST_MODEL_H_
#define SVQ_PLAN_COST_MODEL_H_

#include <vector>

#include "svq/plan/plan_ir.h"
#include "svq/storage/access_stats.h"

namespace svq::plan {

/// Orders the logical intersection most-selective-first (ascending
/// posting-list density). Leaves without statistics sort last — an unknown
/// selectivity must not displace a measured one — and ties break on the
/// label so the order is deterministic. Intersection is commutative on the
/// clip domain, so any order is correct; this one shrinks the running set
/// fastest, which is what makes each later Intersect cheap.
std::vector<PlanOperator> OrderSweep(
    const std::vector<PredicateLeaf>& intersection);

/// Fills PlanOperator::estimated_rows along the ordered sweep and returns
/// the final candidate-set estimates via the out-params. Cardinalities use
/// the textbook independence assumption: after intersecting a leaf of
/// density d, the running clip count multiplies by d. Sequence counts are
/// bounded by the smallest posting list, scaled by the other leaves'
/// densities. Estimates are -1 (unknown) when no leaf has statistics;
/// a leaf whose type was never detected has density 0 and zeroes
/// everything after it — exactly what execution does.
void EstimateCardinalities(const LogicalPlan& logical,
                           std::vector<PlanOperator>* sweep,
                           double* estimated_clips,
                           double* estimated_sequences);

/// Prices each eligible algorithm in virtual ms under `disk` for a
/// candidate set of `estimated_clips` clips in `estimated_sequences`
/// sequences. kRvaqNoSkip is never priced: it exists as an explicit
/// baseline override only. Empty when the estimates are unknown.
std::vector<AlgorithmCost> EstimateAlgorithmCosts(
    const LogicalPlan& logical, double estimated_clips,
    double estimated_sequences, const storage::DiskCostModel& disk);

/// The cheapest priced algorithm; kRvaq when `costs` is empty (the
/// paper's default) or on ties (certified bounds beat exhaustive reads at
/// equal price).
core::OfflineAlgorithm ChooseAlgorithm(const std::vector<AlgorithmCost>& costs);

}  // namespace svq::plan

#endif  // SVQ_PLAN_COST_MODEL_H_
