#include "svq/plan/planner.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "svq/cache/fingerprint.h"
#include "svq/observability/trace.h"
#include "svq/plan/cost_model.h"

namespace svq::plan {

namespace {

/// Statement fingerprint for the plan tier: everything the produced plan
/// depends on beyond the snapshot itself (which scopes the cache). Labels
/// are canonicalized so permuted-equivalent statements share one plan,
/// mirroring the result-cache key; k and the option bits join because the
/// cost model prices with them.
uint64_t PlanFingerprint(const core::Query& query, const std::string& video,
                         bool ranked, int64_t k, AlgorithmChoice requested,
                         const core::OfflineOptions& offline) {
  svq::cache::Fingerprint fp;
  fp.Mix("plan").Mix(video).Mix(ranked).Mix(static_cast<uint64_t>(k));
  fp.Mix("act").Mix(query.action);
  std::vector<std::string> extras = query.extra_actions;
  std::sort(extras.begin(), extras.end());
  for (const std::string& extra : extras) fp.Mix("xa").Mix(extra);
  std::vector<std::string> objects = query.objects;
  std::sort(objects.begin(), objects.end());
  for (const std::string& object : objects) fp.Mix("obj").Mix(object);
  for (const auto& group : query.object_disjunctions) {
    fp.Mix("disj");
    for (const std::string& label : group) fp.Mix(label);
  }
  fp.Mix("nrel").Mix(static_cast<uint64_t>(query.relationships.size()));
  fp.Mix("req").Mix(static_cast<int>(requested));
  fp.Mix(offline.enable_skip).Mix(offline.compute_exact_scores);
  return fp.value();
}

LogicalPlan BuildLogical(const core::SnapshotPtr& snapshot,
                         const core::Query& query, const std::string& video,
                         bool ranked, int64_t k) {
  LogicalPlan logical;
  logical.video = video;
  logical.ranked = ranked;
  logical.k = k;
  logical.disjunction_groups = query.object_disjunctions;
  logical.num_relationships =
      static_cast<int64_t>(query.relationships.size());

  const core::IngestedVideo* ingested = nullptr;
  if (snapshot != nullptr) {
    if (const core::CatalogSnapshot::Entry* entry = snapshot->Find(video)) {
      logical.video_registered = true;
      if (entry->ingested != nullptr) {
        logical.video_ingested = true;
        ingested = entry->ingested.get();
        logical.video_clips = ingested->num_clips;
      }
    }
  }

  auto add_leaf = [&](const std::string& label, bool is_action,
                      bool is_primary) {
    PredicateLeaf leaf;
    leaf.label = label;
    leaf.is_action = is_action;
    leaf.is_primary = is_primary;
    if (ingested != nullptr) {
      const storage::TypeStatistics* stats =
          is_action ? ingested->ActionStatistics(label)
                    : ingested->ObjectStatistics(label);
      // An ingested video without an entry means the type was never in the
      // vocabulary: execution finds no posting list and produces the empty
      // set, so the planner prices it as zero selectivity.
      leaf.stats_known = true;
      if (stats != nullptr) leaf.stats = *stats;
    }
    logical.intersection.push_back(std::move(leaf));
  };
  add_leaf(query.action, /*is_action=*/true, /*is_primary=*/true);
  for (const std::string& extra : query.extra_actions) {
    add_leaf(extra, /*is_action=*/true, /*is_primary=*/false);
  }
  for (const std::string& object : query.objects) {
    add_leaf(object, /*is_action=*/false, /*is_primary=*/false);
  }
  return logical;
}

}  // namespace

const char* AlgorithmChoiceName(AlgorithmChoice choice) {
  switch (choice) {
    case AlgorithmChoice::kAuto:
      return "auto";
    case AlgorithmChoice::kRvaq:
      return "RVAQ";
    case AlgorithmChoice::kRvaqNoSkip:
      return "RVAQ-noSkip";
    case AlgorithmChoice::kFagin:
      return "Fagin";
    case AlgorithmChoice::kPqTraverse:
      return "Pq-Traverse";
  }
  return "unknown";
}

const char* AlgorithmName(core::OfflineAlgorithm algorithm) {
  switch (algorithm) {
    case core::OfflineAlgorithm::kRvaq:
      return "RVAQ";
    case core::OfflineAlgorithm::kRvaqNoSkip:
      return "RVAQ-noSkip";
    case core::OfflineAlgorithm::kFagin:
      return "Fagin";
    case core::OfflineAlgorithm::kPqTraverse:
      return "Pq-Traverse";
  }
  return "unknown";
}

core::OfflineAlgorithm ToAlgorithm(AlgorithmChoice choice) {
  switch (choice) {
    case AlgorithmChoice::kRvaqNoSkip:
      return core::OfflineAlgorithm::kRvaqNoSkip;
    case AlgorithmChoice::kFagin:
      return core::OfflineAlgorithm::kFagin;
    case AlgorithmChoice::kPqTraverse:
      return core::OfflineAlgorithm::kPqTraverse;
    case AlgorithmChoice::kAuto:
    case AlgorithmChoice::kRvaq:
      break;
  }
  return core::OfflineAlgorithm::kRvaq;
}

size_t PhysicalPlan::ByteSize() const {
  size_t bytes = sizeof(PhysicalPlan);
  bytes += video.size() + logical.video.size();
  for (const PlanOperator& op : sweep) {
    bytes += sizeof(PlanOperator) + op.step.label.size();
  }
  for (const PredicateLeaf& leaf : logical.intersection) {
    bytes += sizeof(PredicateLeaf) + leaf.label.size();
  }
  bytes += costs.size() * sizeof(AlgorithmCost);
  for (const auto& group : logical.disjunction_groups) {
    for (const std::string& label : group) bytes += label.size();
  }
  return bytes;
}

PlannerCounters& GlobalPlannerCounters() {
  static PlannerCounters counters;
  return counters;
}

Result<std::shared_ptr<const PhysicalPlan>> PlanQuery(
    const core::SnapshotPtr& snapshot, const core::Query& query,
    const std::string& video, bool ranked, int64_t k,
    AlgorithmChoice requested, const core::OfflineOptions& offline,
    const ExecutionContext& context) {
  PlannerCounters& counters = GlobalPlannerCounters();
  observability::QueryTrace* trace = context.trace();

  // The plan tier answers before any lowering work. Keyed on the statement
  // fingerprint; scoped to the snapshot by construction, so the cached
  // plan's estimates are guaranteed to come from this snapshot's
  // statistics.
  svq::cache::SnapshotCache* cache =
      snapshot != nullptr ? snapshot->cache.get() : nullptr;
  const bool use_cache = cache != nullptr && offline.cache.use_plan_cache;
  const uint64_t fingerprint =
      PlanFingerprint(query, video, ranked, k, requested, offline);
  if (use_cache) {
    if (auto found = cache->LookupPlan(fingerprint)) {
      observability::TraceSpan hit_span(trace, "plan.cache_hit");
      counters.plans_total.fetch_add(1, std::memory_order_relaxed);
      counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return std::static_pointer_cast<const PhysicalPlan>(*found);
    }
  }

  auto plan = std::make_shared<PhysicalPlan>();
  plan->video = video;
  plan->ranked = ranked;
  plan->k = k;
  plan->requested = requested;
  plan->fingerprint = fingerprint;
  {
    observability::TraceSpan lower_span(trace, "lower");
    plan->logical = BuildLogical(snapshot, query, video, ranked, k);
    plan->sweep = OrderSweep(plan->logical.intersection);
  }
  {
    observability::TraceSpan cost_span(trace, "cost");
    EstimateCardinalities(plan->logical, &plan->sweep,
                          &plan->estimated_candidate_clips,
                          &plan->estimated_candidate_sequences);
    plan->costs = EstimateAlgorithmCosts(plan->logical,
                                         plan->estimated_candidate_clips,
                                         plan->estimated_candidate_sequences,
                                         offline.cost_model);
    if (requested == AlgorithmChoice::kAuto) {
      plan->algorithm = ChooseAlgorithm(plan->costs);
      plan->auto_selected = true;
    } else {
      plan->algorithm = ToAlgorithm(requested);
      plan->auto_selected = false;
    }
  }

  counters.plans_total.fetch_add(1, std::memory_order_relaxed);
  if (ranked) {
    if (plan->auto_selected) {
      switch (plan->algorithm) {
        case core::OfflineAlgorithm::kRvaq:
          counters.auto_rvaq.fetch_add(1, std::memory_order_relaxed);
          break;
        case core::OfflineAlgorithm::kFagin:
          counters.auto_fagin.fetch_add(1, std::memory_order_relaxed);
          break;
        case core::OfflineAlgorithm::kPqTraverse:
          counters.auto_pq_traverse.fetch_add(1, std::memory_order_relaxed);
          break;
        case core::OfflineAlgorithm::kRvaqNoSkip:
          break;  // never auto-selected
      }
    } else {
      counters.overrides.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (use_cache) cache->InsertPlan(fingerprint, plan);
  return std::shared_ptr<const PhysicalPlan>(std::move(plan));
}

void RecordEstimateActuals(const PhysicalPlan& plan,
                           const core::OfflineRunStats& stats) {
  // Cache-served results carry zero stats; only a run that actually swept
  // candidates is an estimate sample (an estimated-empty run that came
  // back empty contributes zero error and is fine to skip).
  if (stats.candidate_sequences <= 0) return;
  if (plan.estimated_candidate_clips < 0.0) return;
  const double actual = static_cast<double>(stats.candidate_clips);
  const double error_pct =
      std::fabs(plan.estimated_candidate_clips - actual) /
      std::max(actual, 1.0) * 100.0;
  PlannerCounters& counters = GlobalPlannerCounters();
  counters.estimate_samples.fetch_add(1, std::memory_order_relaxed);
  counters.estimate_error_pct_sum.fetch_add(
      static_cast<int64_t>(std::llround(error_pct)),
      std::memory_order_relaxed);
}

}  // namespace svq::plan
