#ifndef SVQ_MODELS_OBJECT_DETECTOR_H_
#define SVQ_MODELS_OBJECT_DETECTOR_H_

#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/models/detection.h"
#include "svq/models/inference_stats.h"
#include "svq/video/types.h"

namespace svq::models {

/// Black-box per-frame object detection (paper §2 "Object Detection").
///
/// An instance is bound to one video (in a deployment this wraps a decoder
/// plus a network; here it wraps ground truth plus a noise overlay).
/// Implementations must be deterministic: calling Detect twice on the same
/// frame returns the same detections, as a real model would.
class ObjectDetector {
 public:
  virtual ~ObjectDetector() = default;

  /// All detections on `frame` whose emission the model produced,
  /// regardless of score; callers apply the score threshold `T_obj`.
  virtual Result<std::vector<ObjectDetection>> Detect(
      video::FrameIndex frame) = 0;

  /// Object vocabulary of the model (`O` in the paper).
  virtual const std::vector<std::string>& SupportedLabels() const = 0;

  virtual const std::string& name() const = 0;

  /// Cumulative inference accounting for this instance.
  virtual const InferenceStats& stats() const = 0;
};

}  // namespace svq::models

#endif  // SVQ_MODELS_OBJECT_DETECTOR_H_
