#ifndef SVQ_MODELS_ACTION_RECOGNIZER_H_
#define SVQ_MODELS_ACTION_RECOGNIZER_H_

#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/models/detection.h"
#include "svq/models/inference_stats.h"
#include "svq/video/video_stream.h"

namespace svq::models {

/// Black-box per-shot action recognition (paper §2 "Action Recognition").
///
/// The model consumes a shot (a fixed-length run of frames) and emits zero
/// or more action scores; callers apply the score threshold `T_act`.
/// Implementations must be deterministic per shot.
class ActionRecognizer {
 public:
  virtual ~ActionRecognizer() = default;

  virtual Result<std::vector<ActionScore>> Recognize(
      const video::ShotRef& shot) = 0;

  /// Action vocabulary of the model (`A` in the paper, e.g. Kinetics-600).
  virtual const std::vector<std::string>& SupportedLabels() const = 0;

  virtual const std::string& name() const = 0;

  virtual const InferenceStats& stats() const = 0;
};

}  // namespace svq::models

#endif  // SVQ_MODELS_ACTION_RECOGNIZER_H_
