#ifndef SVQ_MODELS_MODEL_PROFILE_H_
#define SVQ_MODELS_MODEL_PROFILE_H_

#include <map>
#include <string>

#include "svq/common/status.h"

namespace svq::models {

/// Parameters of a Beta distribution used for confidence scores.
struct ScoreDistribution {
  double alpha = 8.0;
  double beta = 2.0;
};

/// Per-label accuracy override (see DetectorProfile::label_accuracy).
struct LabelAccuracy {
  double tpr = 0.0;
  double fpr = 0.0;
};

/// Statistical emulation of a detection model (see DESIGN.md
/// "Substitutions"). The synthetic models reproduce a real model's
/// *observable behaviour* — how often it fires inside/outside true presence,
/// how its errors cluster in time, how its confidence scores distribute,
/// and how long inference takes — which is all the query algorithms ever
/// see.
struct DetectorProfile {
  std::string name = "synthetic";

  /// Probability that an occurrence unit inside true presence emits a
  /// detection (before score thresholding).
  double tpr = 0.95;
  /// Probability that an occurrence unit outside true presence emits a
  /// (false) detection.
  double fpr = 0.02;
  /// Mean length, in occurrence units, of detection dropouts inside true
  /// presence. Real detectors miss in temporally correlated bursts
  /// (occlusion, blur), not i.i.d. per frame.
  double mean_miss_burst = 6.0;
  /// Mean length of false-positive bursts outside true presence.
  double mean_fp_burst = 3.0;
  /// Confidence score law for detections of truly present types.
  ScoreDistribution true_score{9.0, 2.0};
  /// Confidence score law for false detections.
  ScoreDistribution false_score{2.5, 4.0};
  /// Simulated inference latency per occurrence unit (frame or shot), in
  /// milliseconds; drives the virtual-time runtime accounting.
  double cost_ms = 40.0;
  /// When true, the model matches ground truth exactly with score 1.0
  /// (the paper's "Ideal Model" baseline, Table 4).
  bool ideal = false;
  /// Per-label accuracy overrides; labels not listed use `tpr`/`fpr`.
  /// This captures that e.g. COCO detectors find `person` far more reliably
  /// than `faucet` — the driver of the Table 3 correlation effects.
  std::map<std::string, LabelAccuracy> label_accuracy;

  double TprFor(const std::string& label) const {
    auto it = label_accuracy.find(label);
    return it == label_accuracy.end() ? tpr : it->second.tpr;
  }
  double FprFor(const std::string& label) const {
    auto it = label_accuracy.find(label);
    return it == label_accuracy.end() ? fpr : it->second.fpr;
  }

  Status Validate() const;
};

/// Emulation of Mask R-CNN (two-stage, accurate, slow).
DetectorProfile MaskRcnnProfile();
/// Emulation of YOLOv3 (one-stage, faster, noisier).
DetectorProfile YoloV3Profile();
/// Emulation of the I3D action recognizer (per-shot occurrence units).
DetectorProfile I3dProfile();
/// Ideal (ground-truth) object model — paper Table 4.
DetectorProfile IdealObjectProfile();
/// Ideal (ground-truth) action model — paper Table 4.
DetectorProfile IdealActionProfile();

/// Tracking-noise parameters for the synthetic tracker (CenterTrack
/// emulation): real trackers fragment long tracks into several identities.
struct TrackerProfile {
  std::string name = "centertrack";
  /// Mean length (frames) of a track segment before an identity switch.
  double mean_segment_frames = 400.0;
  /// Simulated per-frame tracking cost (ms).
  double cost_ms = 18.0;
};

TrackerProfile CenterTrackProfile();

}  // namespace svq::models

#endif  // SVQ_MODELS_MODEL_PROFILE_H_
