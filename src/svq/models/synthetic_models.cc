#include "svq/models/synthetic_models.h"

#include <algorithm>
#include <cmath>

namespace svq::models {

using video::Interval;
using video::IntervalSet;

namespace {

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic RNG for one (seed, label, unit) triple; gives every
/// occurrence unit an independent but reproducible score draw.
Rng UnitRng(uint64_t seed, uint64_t label_hash, int64_t unit) {
  return Rng(MixHash(MixHash(seed, label_hash),
                     static_cast<uint64_t>(unit) + 0x51ed2701));
}

double DrawScore(const ScoreDistribution& dist, Rng& rng) {
  return rng.NextBeta(dist.alpha, dist.beta);
}

BoundingBox DrawBox(Rng& rng) {
  BoundingBox box;
  box.x = rng.NextDouble(0.0, 0.7);
  box.y = rng.NextDouble(0.0, 0.7);
  box.width = rng.NextDouble(0.1, 0.3);
  box.height = rng.NextDouble(0.1, 0.3);
  return box;
}

std::vector<std::string> BuildVocabulary(
    const std::vector<std::string>& truth_labels,
    const std::vector<std::string>& extra) {
  std::vector<std::string> vocab = truth_labels;
  for (const std::string& label : extra) {
    if (std::find(vocab.begin(), vocab.end(), label) == vocab.end()) {
      vocab.push_back(label);
    }
  }
  std::sort(vocab.begin(), vocab.end());
  return vocab;
}

}  // namespace

uint64_t HashLabel(const std::string& label) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

BoundingBox InstanceBox(const video::TrackInstance& instance,
                        video::FrameIndex frame, uint64_t seed) {
  Rng rng(MixHash(seed ^ 0xb0b0b0ULL,
                  static_cast<uint64_t>(instance.instance_id)));
  const double width = rng.NextDouble(0.08, 0.25);
  const double height = rng.NextDouble(0.10, 0.30);
  const double base_cx = rng.NextDouble(width / 2, 1.0 - width / 2);
  const double base_cy = rng.NextDouble(height / 2, 1.0 - height / 2);
  const double amplitude = rng.NextDouble(0.01, 0.06);
  const double period = rng.NextDouble(240.0, 900.0);
  const double phase = rng.NextDouble(0.0, 2.0 * M_PI);
  const double t = static_cast<double>(frame - instance.frames.begin);
  const double cx = std::clamp(
      base_cx + amplitude * std::sin(2.0 * M_PI * t / period + phase),
      width / 2, 1.0 - width / 2);
  const double cy = std::clamp(
      base_cy + 0.5 * amplitude * std::cos(2.0 * M_PI * t / period + phase),
      height / 2, 1.0 - height / 2);
  BoundingBox box;
  box.x = cx - width / 2;
  box.y = cy - height / 2;
  box.width = width;
  box.height = height;
  return box;
}

InstanceLookup::InstanceLookup(const video::GroundTruth& ground_truth) {
  for (const video::TrackInstance& inst : ground_truth.instances()) {
    by_label_[inst.label].push_back(&inst);
  }
  for (auto& [label, instances] : by_label_) {
    std::sort(instances.begin(), instances.end(),
              [](const video::TrackInstance* a,
                 const video::TrackInstance* b) {
                return a->frames.begin < b->frames.begin;
              });
  }
}

const video::TrackInstance* InstanceLookup::At(const std::string& label,
                                               video::FrameIndex frame) const {
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return nullptr;
  const auto& instances = it->second;
  auto upper = std::upper_bound(
      instances.begin(), instances.end(), frame,
      [](video::FrameIndex f, const video::TrackInstance* inst) {
        return f < inst->frames.begin;
      });
  for (auto rit = upper; rit != instances.begin();) {
    --rit;
    if ((*rit)->frames.Contains(frame)) return *rit;
  }
  return nullptr;
}

PresenceOverlay PresenceOverlay::Build(const IntervalSet& truth,
                                       int64_t num_units, double tpr,
                                       double fpr, double mean_miss_burst,
                                       double mean_fp_burst, bool ideal,
                                       Rng rng) {
  PresenceOverlay overlay;
  if (ideal || (tpr >= 1.0 && fpr <= 0.0)) {
    overlay.detected_ = truth;
    overlay.true_detected_ = truth;
    return overlay;
  }
  // Dropout bursts inside true presence: an alternating process whose
  // stationary on-fraction equals the miss rate 1 - tpr.
  IntervalSet misses;
  const double miss_frac = 1.0 - tpr;
  if (miss_frac > 0.0 && !truth.empty()) {
    const double mean_off = miss_frac >= 1.0
                                ? 1.0
                                : mean_miss_burst * tpr / miss_frac;
    misses = IntervalSet(video::GenerateAlternatingProcess(
        num_units, mean_miss_burst, mean_off, rng));
  }
  // False-positive bursts outside true presence, stationary fraction fpr.
  IntervalSet false_positives;
  if (fpr > 0.0) {
    const double mean_off =
        fpr >= 1.0 ? 1.0 : mean_fp_burst * (1.0 - fpr) / fpr;
    IntervalSet raw(video::GenerateAlternatingProcess(
        num_units, mean_fp_burst, mean_off, rng));
    false_positives =
        IntervalSet::Intersect(raw, truth.Complement(0, num_units));
  }
  overlay.true_detected_ = IntervalSet::Difference(truth, misses);
  overlay.false_detected_ = false_positives;
  overlay.detected_ =
      IntervalSet::Union(overlay.true_detected_, false_positives);
  return overlay;
}

// ---------------------------------------------------------------------------
// SyntheticObjectDetector

SyntheticObjectDetector::SyntheticObjectDetector(
    std::shared_ptr<const video::SyntheticVideo> video,
    DetectorProfile profile, std::vector<std::string> extra_vocabulary,
    uint64_t seed)
    : video_(std::move(video)),
      profile_(std::move(profile)),
      vocabulary_(BuildVocabulary(video_->ground_truth().ObjectLabels(),
                                  extra_vocabulary)),
      seed_(seed),
      lookup_(video_->ground_truth()) {}

const PresenceOverlay& SyntheticObjectDetector::OverlayFor(
    const std::string& label) {
  auto it = overlays_.find(label);
  if (it != overlays_.end()) return it->second;
  Rng rng(MixHash(seed_, HashLabel(label)));
  PresenceOverlay overlay = PresenceOverlay::Build(
      video_->ground_truth().ObjectPresence(label), video_->num_frames(),
      profile_.TprFor(label), profile_.FprFor(label),
      profile_.mean_miss_burst, profile_.mean_fp_burst, profile_.ideal,
      std::move(rng));
  return overlays_.emplace(label, std::move(overlay)).first->second;
}

Result<std::vector<ObjectDetection>> SyntheticObjectDetector::Detect(
    video::FrameIndex frame) {
  if (frame < 0 || frame >= video_->num_frames()) {
    return Status::OutOfRange("frame index out of range");
  }
  stats_.Add(1, profile_.cost_ms);
  std::vector<ObjectDetection> detections;
  for (const std::string& label : vocabulary_) {
    const PresenceOverlay& overlay = OverlayFor(label);
    if (!overlay.detected().Contains(frame)) continue;
    Rng rng = UnitRng(seed_, HashLabel(label), frame);
    ObjectDetection det;
    det.label = label;
    const bool is_true = overlay.true_detected().Contains(frame);
    det.score = profile_.ideal
                    ? 1.0
                    : DrawScore(is_true ? profile_.true_score
                                        : profile_.false_score,
                                rng);
    // True detections carry the instance's stable geometry; false
    // positives hallucinate a random box.
    const video::TrackInstance* instance =
        is_true ? lookup_.At(label, frame) : nullptr;
    det.box = instance != nullptr ? InstanceBox(*instance, frame, seed_)
                                  : DrawBox(rng);
    detections.push_back(std::move(det));
  }
  return detections;
}

// ---------------------------------------------------------------------------
// SyntheticActionRecognizer

SyntheticActionRecognizer::SyntheticActionRecognizer(
    std::shared_ptr<const video::SyntheticVideo> video,
    DetectorProfile profile, std::vector<std::string> extra_vocabulary,
    uint64_t seed)
    : video_(std::move(video)),
      profile_(std::move(profile)),
      vocabulary_(BuildVocabulary(video_->ground_truth().ActionLabels(),
                                  extra_vocabulary)),
      seed_(seed) {}

video::IntervalSet SyntheticActionRecognizer::ShotTruth(
    const std::string& label) const {
  const IntervalSet& frames = video_->ground_truth().ActionPresence(label);
  const video::VideoLayout& layout = video_->layout();
  const int64_t fps = layout.frames_per_shot;
  IntervalSet shots;
  for (const Interval& range : frames.intervals()) {
    const int64_t first_shot = range.begin / fps;
    const int64_t last_shot = (range.end - 1) / fps;
    for (int64_t s = first_shot; s <= last_shot; ++s) {
      const Interval shot_frames = {s * fps, (s + 1) * fps};
      const int64_t overlap =
          std::min(shot_frames.end, range.end) -
          std::max(shot_frames.begin, range.begin);
      // Half-coverage rule: the recognizer "truly sees" the action when it
      // occupies at least half the shot.
      if (2 * overlap >= fps) shots.Add({s, s + 1});
    }
  }
  return shots;
}

const PresenceOverlay& SyntheticActionRecognizer::OverlayFor(
    const std::string& label) {
  auto it = overlays_.find(label);
  if (it != overlays_.end()) return it->second;
  Rng rng(MixHash(seed_ ^ 0xac7101ULL, HashLabel(label)));
  PresenceOverlay overlay = PresenceOverlay::Build(
      ShotTruth(label), video_->NumShots(), profile_.TprFor(label),
      profile_.FprFor(label), profile_.mean_miss_burst,
      profile_.mean_fp_burst, profile_.ideal, std::move(rng));
  return overlays_.emplace(label, std::move(overlay)).first->second;
}

Result<std::vector<ActionScore>> SyntheticActionRecognizer::Recognize(
    const video::ShotRef& shot) {
  if (shot.shot < 0 || shot.shot >= video_->NumShots()) {
    return Status::OutOfRange("shot index out of range");
  }
  stats_.Add(1, profile_.cost_ms);
  std::vector<ActionScore> scores;
  for (const std::string& label : vocabulary_) {
    const PresenceOverlay& overlay = OverlayFor(label);
    if (!overlay.detected().Contains(shot.shot)) continue;
    Rng rng = UnitRng(seed_ ^ 0xac7101ULL, HashLabel(label), shot.shot);
    const double score =
        profile_.ideal
            ? 1.0
            : DrawScore(overlay.true_detected().Contains(shot.shot)
                            ? profile_.true_score
                            : profile_.false_score,
                        rng);
    scores.push_back({label, score});
  }
  return scores;
}

// ---------------------------------------------------------------------------
// SyntheticObjectTracker

SyntheticObjectTracker::SyntheticObjectTracker(
    std::shared_ptr<const video::SyntheticVideo> video,
    DetectorProfile detector_profile, TrackerProfile tracker_profile,
    std::vector<std::string> extra_vocabulary, uint64_t seed)
    : video_(std::move(video)),
      detector_profile_(std::move(detector_profile)),
      tracker_profile_(std::move(tracker_profile)),
      vocabulary_(BuildVocabulary(video_->ground_truth().ObjectLabels(),
                                  extra_vocabulary)),
      seed_(seed),
      lookup_(video_->ground_truth()) {
  for (const video::TrackInstance& inst : video_->ground_truth().instances()) {
    by_label_[inst.label].push_back(&inst);
  }
  for (auto& [label, instances] : by_label_) {
    std::sort(instances.begin(), instances.end(),
              [](const video::TrackInstance* a, const video::TrackInstance* b) {
                return a->frames.begin < b->frames.begin;
              });
  }
}

const PresenceOverlay& SyntheticObjectTracker::OverlayFor(
    const std::string& label) {
  auto it = overlays_.find(label);
  if (it != overlays_.end()) return it->second;
  // Same noise stream as a detector with the same seed would use, so a
  // paired detector/tracker see consistent emissions.
  Rng rng(MixHash(seed_, HashLabel(label)));
  PresenceOverlay overlay = PresenceOverlay::Build(
      video_->ground_truth().ObjectPresence(label), video_->num_frames(),
      detector_profile_.TprFor(label), detector_profile_.FprFor(label),
      detector_profile_.mean_miss_burst, detector_profile_.mean_fp_burst,
      detector_profile_.ideal, std::move(rng));
  return overlays_.emplace(label, std::move(overlay)).first->second;
}

int64_t SyntheticObjectTracker::TrueTrackIdAt(const std::string& label,
                                              video::FrameIndex frame) {
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return -1;
  const auto& instances = it->second;
  // Instances are sorted by begin; walk back from the last instance that
  // begins at or before `frame`. Appearances of one label rarely overlap,
  // so the scan is short in practice.
  auto upper = std::upper_bound(
      instances.begin(), instances.end(), frame,
      [](video::FrameIndex f, const video::TrackInstance* inst) {
        return f < inst->frames.begin;
      });
  for (auto rit = upper; rit != instances.begin();) {
    --rit;
    const video::TrackInstance* inst = *rit;
    if (!inst->frames.Contains(frame)) continue;
    // Identity churn: the instance fragments into geometric-length track
    // segments, each with its own identifier (deterministic per instance).
    auto bit = segment_boundaries_.find(inst->instance_id);
    if (bit == segment_boundaries_.end()) {
      std::vector<int64_t> boundaries;
      Rng rng(MixHash(seed_ ^ 0x7eac4e7ULL,
                      static_cast<uint64_t>(inst->instance_id)));
      int64_t cursor = inst->frames.begin;
      while (cursor < inst->frames.end) {
        cursor += 1 + static_cast<int64_t>(rng.NextGeometric(
                          1.0 / std::max(1.0,
                                         tracker_profile_.mean_segment_frames)));
        boundaries.push_back(std::min(cursor, inst->frames.end));
      }
      bit = segment_boundaries_
                .emplace(inst->instance_id, std::move(boundaries))
                .first;
    }
    const std::vector<int64_t>& bounds = bit->second;
    const int64_t segment =
        std::upper_bound(bounds.begin(), bounds.end(), frame) -
        bounds.begin();
    return (inst->instance_id << 12) | (segment & 0xFFF);
  }
  return -1;
}

int64_t SyntheticObjectTracker::FalseTrackIdAt(const std::string& label,
                                               video::FrameIndex frame) {
  const PresenceOverlay& overlay = OverlayFor(label);
  const int64_t idx = overlay.false_detected().FindInterval(frame);
  if (idx < 0) return -1;
  // False tracks get identifiers in a disjoint high range, one per
  // false-positive burst.
  return (int64_t{1} << 40) |
         (static_cast<int64_t>(HashLabel(label) & 0xFFFFF) << 16) |
         (idx & 0xFFFF);
}

Result<std::vector<ObjectDetection>> SyntheticObjectTracker::Track(
    video::FrameIndex frame) {
  if (frame < 0 || frame >= video_->num_frames()) {
    return Status::OutOfRange("frame index out of range");
  }
  stats_.Add(1, detector_profile_.cost_ms + tracker_profile_.cost_ms);
  std::vector<ObjectDetection> detections;
  for (const std::string& label : vocabulary_) {
    const PresenceOverlay& overlay = OverlayFor(label);
    if (!overlay.detected().Contains(frame)) continue;
    Rng rng = UnitRng(seed_, HashLabel(label), frame);
    ObjectDetection det;
    det.label = label;
    const bool is_true = overlay.true_detected().Contains(frame);
    det.score = detector_profile_.ideal
                    ? 1.0
                    : DrawScore(is_true ? detector_profile_.true_score
                                        : detector_profile_.false_score,
                                rng);
    const video::TrackInstance* instance =
        is_true ? lookup_.At(label, frame) : nullptr;
    det.box = instance != nullptr ? InstanceBox(*instance, frame, seed_)
                                  : DrawBox(rng);
    det.track_id =
        is_true ? TrueTrackIdAt(label, frame) : FalseTrackIdAt(label, frame);
    if (det.track_id < 0) det.track_id = FalseTrackIdAt(label, frame);
    detections.push_back(std::move(det));
  }
  return detections;
}

// ---------------------------------------------------------------------------
// Suites and factories

ModelSet MakeModelSet(const std::shared_ptr<const video::SyntheticVideo>& video,
                      const ModelSuite& suite,
                      const std::vector<std::string>& query_object_labels,
                      const std::vector<std::string>& query_action_labels) {
  ModelSet set;
  set.detector = std::make_unique<SyntheticObjectDetector>(
      video, suite.object_profile, query_object_labels, suite.seed);
  set.recognizer = std::make_unique<SyntheticActionRecognizer>(
      video, suite.action_profile, query_action_labels, suite.seed);
  set.tracker = std::make_unique<SyntheticObjectTracker>(
      video, suite.object_profile, suite.tracker_profile, query_object_labels,
      suite.seed);
  return set;
}

ModelSuite MaskRcnnI3dSuite() {
  ModelSuite suite;
  suite.object_profile = MaskRcnnProfile();
  suite.action_profile = I3dProfile();
  return suite;
}

ModelSuite YoloV3I3dSuite() {
  ModelSuite suite;
  suite.object_profile = YoloV3Profile();
  suite.action_profile = I3dProfile();
  return suite;
}

ModelSuite IdealSuite() {
  ModelSuite suite;
  suite.object_profile = IdealObjectProfile();
  suite.action_profile = IdealActionProfile();
  return suite;
}

}  // namespace svq::models
