#ifndef SVQ_MODELS_INFERENCE_STATS_H_
#define SVQ_MODELS_INFERENCE_STATS_H_

#include <cstdint>

namespace svq::models {

/// Running account of how much model inference a component has performed.
///
/// The synthetic models do not run neural networks; instead every inference
/// call accrues the profile's simulated latency here. The online engines
/// report these numbers to reproduce the paper's §5.2 "Runtime Superiority"
/// breakdown (">98% of query latency is model inference").
struct InferenceStats {
  /// Occurrence units processed (frames for detectors/trackers, shots for
  /// action recognizers).
  int64_t units = 0;
  /// Total simulated inference latency in milliseconds.
  double simulated_ms = 0.0;

  void Add(int64_t n, double cost_ms_per_unit) {
    units += n;
    simulated_ms += static_cast<double>(n) * cost_ms_per_unit;
  }
  InferenceStats& operator+=(const InferenceStats& other) {
    units += other.units;
    simulated_ms += other.simulated_ms;
    return *this;
  }
};

}  // namespace svq::models

#endif  // SVQ_MODELS_INFERENCE_STATS_H_
