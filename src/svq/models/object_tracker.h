#ifndef SVQ_MODELS_OBJECT_TRACKER_H_
#define SVQ_MODELS_OBJECT_TRACKER_H_

#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/models/detection.h"
#include "svq/models/inference_stats.h"
#include "svq/video/types.h"

namespace svq::models {

/// Black-box object tracking (paper §2): like a detector, but every
/// detection carries a tracking identifier that is stable while the same
/// instance stays visible. Used by the offline ingestion phase, whose
/// scoring function `h` aggregates scores per (type, track, frame).
class ObjectTracker {
 public:
  virtual ~ObjectTracker() = default;

  /// Tracked detections on `frame`; `track_id` is set on every detection.
  virtual Result<std::vector<ObjectDetection>> Track(
      video::FrameIndex frame) = 0;

  virtual const std::vector<std::string>& SupportedLabels() const = 0;

  virtual const std::string& name() const = 0;

  virtual const InferenceStats& stats() const = 0;
};

}  // namespace svq::models

#endif  // SVQ_MODELS_OBJECT_TRACKER_H_
