#ifndef SVQ_MODELS_DETECTION_H_
#define SVQ_MODELS_DETECTION_H_

#include <cstdint>
#include <string>

namespace svq::models {

/// Axis-aligned box in normalized [0,1] frame coordinates.
struct BoundingBox {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;
};

/// One object detection on one frame: the label, the detector confidence
/// score in [0, 1] (`S_{o_i}^{(v)}` of paper §2), the box, and — when a
/// tracker produced it — a stable tracking identifier (`t` in the paper's
/// `S_{o_i}^t(v)` notation).
struct ObjectDetection {
  std::string label;
  double score = 0.0;
  BoundingBox box;
  /// Stable instance id across frames; -1 when the producer is a plain
  /// detector without tracking.
  int64_t track_id = -1;
};

/// One action classification for one shot: label and confidence score
/// (`S_{a_j}^{(s)}` of paper §2).
struct ActionScore {
  std::string label;
  double score = 0.0;
};

}  // namespace svq::models

#endif  // SVQ_MODELS_DETECTION_H_
