#ifndef SVQ_MODELS_SYNTHETIC_MODELS_H_
#define SVQ_MODELS_SYNTHETIC_MODELS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/common/rng.h"
#include "svq/models/action_recognizer.h"
#include "svq/models/model_profile.h"
#include "svq/models/object_detector.h"
#include "svq/models/object_tracker.h"
#include "svq/video/interval_set.h"
#include "svq/video/synthetic_video.h"
#include "svq/video/video_stream.h"

namespace svq::models {

/// Per-label noise overlay over an occurrence-unit domain: which units the
/// model emits a detection on, given the true presence set and the
/// profile's burst-noise parameters. Detections inside true presence score
/// from the profile's true-score law, the rest from the false-score law.
///
/// The overlay is generated once per (video, label) from a deterministic
/// RNG stream, so that the emulated model is a pure function of the frame —
/// exactly like a real network — while its errors remain temporally
/// correlated (dropout and false-positive *bursts*, not i.i.d. flips).
class PresenceOverlay {
 public:
  static PresenceOverlay Build(const video::IntervalSet& truth,
                               int64_t num_units, double tpr, double fpr,
                               double mean_miss_burst, double mean_fp_burst,
                               bool ideal, Rng rng);

  /// Units on which the model emits a detection of this label.
  const video::IntervalSet& detected() const { return detected_; }
  /// Emitted units that are truly present (score from the true-score law).
  const video::IntervalSet& true_detected() const { return true_detected_; }
  /// Emitted units that are false positives.
  const video::IntervalSet& false_detected() const { return false_detected_; }

 private:
  video::IntervalSet detected_;
  video::IntervalSet true_detected_;
  video::IntervalSet false_detected_;
};

/// FNV-1a hash used to derive deterministic per-label RNG streams.
uint64_t HashLabel(const std::string& label);

/// Deterministic bounding box of a ground-truth instance at a frame: each
/// instance occupies a stable region of the frame and drifts slowly
/// (sinusoidal pan), which gives spatial relationships between instances
/// temporal coherence — the substrate for the paper's footnote-2
/// relationship predicates. Detector and tracker built with the same seed
/// produce identical boxes.
BoundingBox InstanceBox(const video::TrackInstance& instance,
                        video::FrameIndex frame, uint64_t seed);

/// Label -> covering ground-truth instance lookup shared by the synthetic
/// detector and tracker.
class InstanceLookup {
 public:
  explicit InstanceLookup(const video::GroundTruth& ground_truth);

  /// The earliest-starting instance of `label` covering `frame`; nullptr
  /// when none does.
  const video::TrackInstance* At(const std::string& label,
                                 video::FrameIndex frame) const;

 private:
  std::map<std::string, std::vector<const video::TrackInstance*>> by_label_;
};

/// Object detector emulation over a synthetic video; see DetectorProfile.
class SyntheticObjectDetector final : public ObjectDetector {
 public:
  /// `extra_vocabulary` extends the model vocabulary beyond the labels in
  /// the video's ground truth (a query may ask for types that never occur).
  SyntheticObjectDetector(std::shared_ptr<const video::SyntheticVideo> video,
                          DetectorProfile profile,
                          std::vector<std::string> extra_vocabulary,
                          uint64_t seed);

  Result<std::vector<ObjectDetection>> Detect(video::FrameIndex frame) override;
  const std::vector<std::string>& SupportedLabels() const override {
    return vocabulary_;
  }
  const std::string& name() const override { return profile_.name; }
  const InferenceStats& stats() const override { return stats_; }

  /// The noise overlay of `label` (exposed for tests and white-box metrics).
  const PresenceOverlay& OverlayFor(const std::string& label);

 private:
  std::shared_ptr<const video::SyntheticVideo> video_;
  DetectorProfile profile_;
  std::vector<std::string> vocabulary_;
  uint64_t seed_;
  std::map<std::string, PresenceOverlay> overlays_;
  InstanceLookup lookup_;
  InferenceStats stats_;
};

/// Action recognizer emulation; occurrence units are shots. A shot is
/// treated as truly containing an action when at least half of its frames
/// lie inside the action's ground-truth range.
class SyntheticActionRecognizer final : public ActionRecognizer {
 public:
  SyntheticActionRecognizer(std::shared_ptr<const video::SyntheticVideo> video,
                            DetectorProfile profile,
                            std::vector<std::string> extra_vocabulary,
                            uint64_t seed);

  Result<std::vector<ActionScore>> Recognize(
      const video::ShotRef& shot) override;
  const std::vector<std::string>& SupportedLabels() const override {
    return vocabulary_;
  }
  const std::string& name() const override { return profile_.name; }
  const InferenceStats& stats() const override { return stats_; }

  const PresenceOverlay& OverlayFor(const std::string& label);

  /// Shot-domain ground truth for `label` under the half-coverage rule.
  video::IntervalSet ShotTruth(const std::string& label) const;

 private:
  std::shared_ptr<const video::SyntheticVideo> video_;
  DetectorProfile profile_;
  std::vector<std::string> vocabulary_;
  uint64_t seed_;
  std::map<std::string, PresenceOverlay> overlays_;
  InferenceStats stats_;
};

/// Tracker emulation: detector noise plus identity churn — long instances
/// fragment into several track ids with geometric segment lengths
/// (CenterTrack-style behaviour).
class SyntheticObjectTracker final : public ObjectTracker {
 public:
  SyntheticObjectTracker(std::shared_ptr<const video::SyntheticVideo> video,
                         DetectorProfile detector_profile,
                         TrackerProfile tracker_profile,
                         std::vector<std::string> extra_vocabulary,
                         uint64_t seed);

  Result<std::vector<ObjectDetection>> Track(video::FrameIndex frame) override;
  const std::vector<std::string>& SupportedLabels() const override {
    return vocabulary_;
  }
  const std::string& name() const override { return tracker_profile_.name; }
  const InferenceStats& stats() const override { return stats_; }

 private:
  struct InstanceIndex;

  const PresenceOverlay& OverlayFor(const std::string& label);
  /// Track id of the ground-truth instance covering `frame`, after identity
  /// churn; -1 when no instance covers it.
  int64_t TrueTrackIdAt(const std::string& label, video::FrameIndex frame);
  int64_t FalseTrackIdAt(const std::string& label, video::FrameIndex frame);

  std::shared_ptr<const video::SyntheticVideo> video_;
  DetectorProfile detector_profile_;
  TrackerProfile tracker_profile_;
  std::vector<std::string> vocabulary_;
  uint64_t seed_;
  std::map<std::string, PresenceOverlay> overlays_;
  std::map<std::string, std::vector<const video::TrackInstance*>> by_label_;
  std::map<int64_t, std::vector<int64_t>> segment_boundaries_;
  InstanceLookup lookup_;
  InferenceStats stats_;
};

/// Bundle of per-video model instances used by one query execution.
struct ModelSet {
  std::unique_ptr<ObjectDetector> detector;
  std::unique_ptr<ActionRecognizer> recognizer;
  std::unique_ptr<ObjectTracker> tracker;
};

/// Named model configuration for building ModelSets.
struct ModelSuite {
  DetectorProfile object_profile = MaskRcnnProfile();
  DetectorProfile action_profile = I3dProfile();
  TrackerProfile tracker_profile = CenterTrackProfile();
  uint64_t seed = 77;
};

/// Instantiates synthetic models over `video`; `query_labels` are added to
/// the detector/recognizer vocabularies.
ModelSet MakeModelSet(const std::shared_ptr<const video::SyntheticVideo>& video,
                      const ModelSuite& suite,
                      const std::vector<std::string>& query_object_labels,
                      const std::vector<std::string>& query_action_labels);

/// Suite presets matching the paper's model choices (Table 4 rows).
ModelSuite MaskRcnnI3dSuite();
ModelSuite YoloV3I3dSuite();
ModelSuite IdealSuite();

}  // namespace svq::models

#endif  // SVQ_MODELS_SYNTHETIC_MODELS_H_
