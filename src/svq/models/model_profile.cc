#include "svq/models/model_profile.h"

namespace svq::models {

Status DetectorProfile::Validate() const {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(tpr) || !in01(fpr)) {
    return Status::InvalidArgument("tpr/fpr must be in [0, 1]");
  }
  for (const auto& [label, acc] : label_accuracy) {
    if (!in01(acc.tpr) || !in01(acc.fpr)) {
      return Status::InvalidArgument("label accuracy out of range for " +
                                     label);
    }
  }
  if (mean_miss_burst < 1.0 || mean_fp_burst < 1.0) {
    return Status::InvalidArgument("burst means must be >= 1");
  }
  if (true_score.alpha <= 0.0 || true_score.beta <= 0.0 ||
      false_score.alpha <= 0.0 || false_score.beta <= 0.0) {
    return Status::InvalidArgument("score distribution params must be > 0");
  }
  if (cost_ms < 0.0) {
    return Status::InvalidArgument("cost_ms must be >= 0");
  }
  return Status::OK();
}

DetectorProfile MaskRcnnProfile() {
  DetectorProfile p;
  p.name = "maskrcnn";
  p.tpr = 0.93;
  p.fpr = 0.02;
  p.mean_miss_burst = 6.0;
  p.mean_fp_burst = 3.0;
  p.true_score = {9.0, 2.0};
  p.false_score = {2.5, 4.0};
  p.cost_ms = 95.0;
  return p;
}

DetectorProfile YoloV3Profile() {
  DetectorProfile p;
  p.name = "yolov3";
  p.tpr = 0.82;
  p.fpr = 0.06;
  p.mean_miss_burst = 8.0;
  p.mean_fp_burst = 4.0;
  // One-stage detectors score true objects less confidently, so more true
  // detections land below the T_obj threshold.
  p.true_score = {5.5, 2.5};
  p.false_score = {2.5, 3.5};
  p.cost_ms = 22.0;
  return p;
}

DetectorProfile I3dProfile() {
  DetectorProfile p;
  p.name = "i3d";
  p.tpr = 0.90;
  p.fpr = 0.03;
  // Occurrence units are shots. Misses during a sustained action are
  // near-independent per shot (a 2-shot dropout is ~32 frames of sustained
  // misclassification mid-action, which clip-level recognizers rarely
  // exhibit); false positives still cluster on confusable scenes.
  p.mean_miss_burst = 1.2;
  p.mean_fp_burst = 2.0;
  p.true_score = {8.0, 2.0};
  p.false_score = {2.0, 4.0};
  // Per-shot inference cost (a 16-frame 3D conv stack).
  p.cost_ms = 110.0;
  return p;
}

DetectorProfile IdealObjectProfile() {
  DetectorProfile p;
  p.name = "ideal-object";
  p.tpr = 1.0;
  p.fpr = 0.0;
  p.ideal = true;
  p.cost_ms = 0.0;
  return p;
}

DetectorProfile IdealActionProfile() {
  DetectorProfile p;
  p.name = "ideal-action";
  p.tpr = 1.0;
  p.fpr = 0.0;
  p.ideal = true;
  p.cost_ms = 0.0;
  return p;
}

TrackerProfile CenterTrackProfile() { return TrackerProfile(); }

}  // namespace svq::models
