#ifndef SVQ_SERVER_CLIENT_H_
#define SVQ_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "svq/common/result.h"
#include "svq/server/wire.h"

namespace svq::server {

/// A blocking wire-level client for svqd. One connection, one outstanding
/// request at a time (the protocol allows pipelining; this client does
/// not). Not thread safe — use one Client per thread.
///
/// `Execute` returns the transport outcome as the Result's status and the
/// *query* outcome inside QueryResponse::status: a query that the server
/// rejected (kResourceExhausted) or expired (kDeadlineExceeded) is a
/// successful round trip carrying a non-OK query status.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Movable: ownership of the connection transfers; the source is left
  /// disconnected.
  Client(Client&& other) noexcept
      : fd_(other.fd_),
        next_request_id_(other.next_request_id_),
        assembler_(std::move(other.assembler_)),
        event_stash_(std::move(other.event_stash_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      next_request_id_ = other.next_request_id_;
      assembler_ = std::move(other.assembler_);
      event_stash_ = std::move(other.event_stash_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to `host:port`. `recv_timeout` bounds every later receive so
  /// a dead server surfaces as IOError instead of a hang; it must comfortably
  /// exceed the longest query timeout you plan to issue. `connect_timeout`
  /// bounds the TCP handshake itself (non-blocking connect + poll) so a
  /// black-holed address surfaces as IOError instead of hanging for the
  /// kernel's SYN-retry budget; zero keeps the historical unbounded
  /// blocking connect.
  Status Connect(const std::string& host, uint16_t port,
                 std::chrono::milliseconds recv_timeout =
                     std::chrono::milliseconds(120000),
                 std::chrono::milliseconds connect_timeout =
                     std::chrono::milliseconds(0));

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Runs one statement with a per-request timeout (0 = unlimited). The
  /// timeout travels to the server and becomes the query's
  /// ExecutionContext deadline.
  Result<QueryResponse> Execute(const std::string& statement,
                                uint32_t timeout_ms = 0);

  /// The STATS verb: cumulative server counters and latency histograms.
  Result<ServerStatsWire> GetStats();

  /// The EXPLAIN verb (wire v3): renders the statement's cost-based plan
  /// against the server's current catalog snapshot. With `analyze` the
  /// statement executes server-side (through admission control, same as
  /// Execute) and actuals are rendered beside the estimates; `timeout_ms`
  /// bounds that execution (0 = unlimited). Like Execute, the transport
  /// outcome is the Result's status and the explain outcome lives in
  /// ExplainResponse::status.
  Result<ExplainResponse> Explain(const std::string& statement,
                                  bool analyze = false,
                                  uint32_t timeout_ms = 0);

  // --- Streaming verbs (wire v4, docs/streaming.md). Once a subscription
  // is open, the server may push EVENT frames at any time; frames that
  // arrive while this client awaits some other response are stashed and
  // surfaced by NextEvent() in arrival order.

  /// Registers a standing streaming statement against `feed` (empty = the
  /// statement's FROM video). `mode` is 0 for SVAQ, 1 for SVAQD;
  /// `queue_capacity` 0 takes the server default; `timeout_ms` bounds the
  /// subscription's lifetime (0 = unlimited). The subscription outcome is
  /// in SubscribeResponse::status.
  Result<SubscribeResponse> Subscribe(const std::string& feed,
                                      const std::string& statement,
                                      uint8_t mode = 1,
                                      uint32_t queue_capacity = 0,
                                      uint32_t timeout_ms = 0);

  /// The FEED verb: dispatches up to `clip_count` clips of the feed's
  /// source video to every standing subscription on the feed.
  Result<FeedResponse> FeedClips(const std::string& feed, int64_t clip_count);

  /// Tears down a subscription; every event it produced is delivered (and
  /// stashed here) before the acknowledgement.
  Result<UnsubscribeResponse> Unsubscribe(uint64_t subscription_id);

  /// The next server-pushed event: from the stash if one is buffered,
  /// otherwise blocks on the socket (bounded by the connect recv_timeout).
  Result<EventFrame> NextEvent();

  /// Events buffered while awaiting other responses.
  size_t stashed_events() const { return event_stash_.size(); }

 private:
  Status SendAll(const std::string& frame);
  /// Receives exactly one complete frame payload.
  Status RecvPayload(std::string* payload);
  /// Receives payloads until one of `expected` type arrives, stashing any
  /// EVENT frames pushed in between. `payload` holds the expected frame.
  Status RecvExpected(MessageType expected, std::string* payload);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
  std::deque<EventFrame> event_stash_;
};

}  // namespace svq::server

#endif  // SVQ_SERVER_CLIENT_H_
