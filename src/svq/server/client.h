#ifndef SVQ_SERVER_CLIENT_H_
#define SVQ_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "svq/common/result.h"
#include "svq/server/wire.h"

namespace svq::server {

/// A blocking wire-level client for svqd. One connection, one outstanding
/// request at a time (the protocol allows pipelining; this client does
/// not). Not thread safe — use one Client per thread.
///
/// `Execute` returns the transport outcome as the Result's status and the
/// *query* outcome inside QueryResponse::status: a query that the server
/// rejected (kResourceExhausted) or expired (kDeadlineExceeded) is a
/// successful round trip carrying a non-OK query status.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Movable: ownership of the connection transfers; the source is left
  /// disconnected.
  Client(Client&& other) noexcept
      : fd_(other.fd_),
        next_request_id_(other.next_request_id_),
        assembler_(std::move(other.assembler_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      next_request_id_ = other.next_request_id_;
      assembler_ = std::move(other.assembler_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to `host:port`. `recv_timeout` bounds every later receive so
  /// a dead server surfaces as IOError instead of a hang; it must comfortably
  /// exceed the longest query timeout you plan to issue.
  Status Connect(const std::string& host, uint16_t port,
                 std::chrono::milliseconds recv_timeout =
                     std::chrono::milliseconds(120000));

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Runs one statement with a per-request timeout (0 = unlimited). The
  /// timeout travels to the server and becomes the query's
  /// ExecutionContext deadline.
  Result<QueryResponse> Execute(const std::string& statement,
                                uint32_t timeout_ms = 0);

  /// The STATS verb: cumulative server counters and latency histograms.
  Result<ServerStatsWire> GetStats();

  /// The EXPLAIN verb (wire v3): renders the statement's cost-based plan
  /// against the server's current catalog snapshot. With `analyze` the
  /// statement executes server-side (through admission control, same as
  /// Execute) and actuals are rendered beside the estimates; `timeout_ms`
  /// bounds that execution (0 = unlimited). Like Execute, the transport
  /// outcome is the Result's status and the explain outcome lives in
  /// ExplainResponse::status.
  Result<ExplainResponse> Explain(const std::string& statement,
                                  bool analyze = false,
                                  uint32_t timeout_ms = 0);

 private:
  Status SendAll(const std::string& frame);
  /// Receives exactly one complete frame payload.
  Status RecvPayload(std::string* payload);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace svq::server

#endif  // SVQ_SERVER_CLIENT_H_
