// svqd — the SVQ-ACT network daemon: serves the dialect over the wire
// protocol of docs/server.md, with admission control, per-request deadlines,
// and graceful drain on SIGINT/SIGTERM.
//
// The daemon registers and ingests a synthetic demo repository at startup
// (videos `serving_0..N-1`, action 'smoking' correlated with object 'cup'),
// the same workload the serving benches use, so a fresh checkout can run a
// server + client pair with zero external data.
//
// Run:   ./build/svqd --port 0 --videos 2 --scale 0.25
// Query: ./build/svq_client --port <bound port>
//          "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS serving_0
//           PRODUCE clipID, obj USING ObjectDetector, act USING
//           ActionRecognizer) WHERE act='smoking' AND obj.include('cup')
//           ORDER BY RANK(act, obj) LIMIT 3"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "svq/core/engine.h"
#include "svq/server/server.h"
#include "svq/video/synthetic_video.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

svq::Result<std::shared_ptr<const svq::video::SyntheticVideo>> MakeVideo(
    int index, double scale) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "serving_" + std::to_string(index);
  spec.num_frames = static_cast<int64_t>(120000 * scale);
  spec.seed = 9100 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  svq::video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  return svq::video::SyntheticVideo::Generate(spec);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host A] [--port N] [--videos N] [--scale S]\n"
      "          [--max-in-flight N] [--max-queue N] [--max-connections N]\n"
      "          [--threads-per-query N] [--port-file PATH] [--drain-ms N]\n"
      "          [--cache-mb N]          query cache budget, 0 disables\n"
      "                                  (default 64)\n"
      "          [--metrics-dump PATH]   Prometheus text dump on exit\n"
      "                                  ('-' writes to stdout)\n"
      "          [--ingest-dir DIR]      persist demo ingest artifacts under\n"
      "                                  DIR (one subdirectory per video)\n"
      "          [--catalog DIR]         serve a previously written ingest\n"
      "                                  directory instead of regenerating\n"
      "                                  the demo; corrupt artifact sets are\n"
      "                                  quarantined and skipped\n",
      argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  svq::server::ServerOptions options;
  int videos = 2;
  double scale = 0.25;
  int drain_ms = 5000;
  int cache_mb = 64;
  std::string port_file;
  std::string metrics_dump;
  std::string ingest_dir;
  std::string catalog_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      options.bind_address = value;
    } else if (arg == "--port" && (value = next())) {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--videos" && (value = next())) {
      videos = std::atoi(value);
    } else if (arg == "--scale" && (value = next())) {
      scale = std::atof(value);
    } else if (arg == "--max-in-flight" && (value = next())) {
      options.max_in_flight = std::atoi(value);
    } else if (arg == "--max-queue" && (value = next())) {
      options.max_queue = std::atoi(value);
    } else if (arg == "--max-connections" && (value = next())) {
      options.max_connections = std::atoi(value);
    } else if (arg == "--threads-per-query" && (value = next())) {
      options.threads_per_query = std::atoi(value);
    } else if (arg == "--port-file" && (value = next())) {
      port_file = value;
    } else if (arg == "--drain-ms" && (value = next())) {
      drain_ms = std::atoi(value);
    } else if (arg == "--cache-mb" && (value = next())) {
      cache_mb = std::atoi(value);
    } else if (arg == "--metrics-dump" && (value = next())) {
      metrics_dump = value;
    } else if (arg == "--ingest-dir" && (value = next())) {
      ingest_dir = value;
    } else if (arg == "--catalog" && (value = next())) {
      catalog_dir = value;
    } else {
      return Usage(argv[0]);
    }
  }

  // Serving is where repeated statements pay off: enable the snapshot query
  // cache unless explicitly zeroed (single-shot tools leave it off).
  svq::cache::CacheOptions cache_options;
  if (cache_mb > 0) {
    cache_options =
        svq::cache::CacheOptions::Enabled(static_cast<size_t>(cache_mb));
  }
  svq::core::IngestOptions ingest_options;
  if (!ingest_dir.empty()) {
    ingest_options.backend = svq::core::IngestOptions::TableBackend::kDisk;
    ingest_options.directory = ingest_dir;
  }
  svq::core::VideoQueryEngine engine(svq::models::ModelSuite(),
                                     svq::core::OnlineConfig(),
                                     ingest_options, cache_options);
  if (!catalog_dir.empty()) {
    // Restart path: open every artifact set under the catalog directory
    // instead of regenerating the demo. A corrupt set is quarantined
    // (renamed aside by OpenIngestedVideo) and skipped — one damaged video
    // must never keep the rest of the catalog from serving.
    std::error_code ec;
    std::vector<std::string> entries;
    for (const auto& dirent :
         std::filesystem::directory_iterator(catalog_dir, ec)) {
      if (dirent.is_directory()) entries.push_back(dirent.path().string());
    }
    if (ec) {
      std::fprintf(stderr, "svqd: cannot read catalog '%s': %s\n",
                   catalog_dir.c_str(), ec.message().c_str());
      return 1;
    }
    std::sort(entries.begin(), entries.end());
    int opened = 0;
    for (const std::string& directory : entries) {
      auto ingested = svq::core::OpenIngestedVideo(directory);
      if (!ingested.ok()) {
        std::fprintf(stderr, "svqd: skipping '%s': %s\n", directory.c_str(),
                     ingested.status().ToString().c_str());
        continue;
      }
      const std::string name = ingested->name;
      auto id = engine.AddIngested(std::make_shared<const svq::core::IngestedVideo>(
          std::move(ingested).value()));
      if (!id.ok()) {
        std::fprintf(stderr, "svqd: AddIngested '%s' failed: %s\n",
                     name.c_str(), id.status().ToString().c_str());
        continue;
      }
      std::printf("svqd: opened ingested video '%s' from %s\n", name.c_str(),
                  directory.c_str());
      ++opened;
    }
    if (opened == 0) {
      std::fprintf(stderr, "svqd: no servable videos in catalog '%s'\n",
                   catalog_dir.c_str());
      return 1;
    }
    std::printf("svqd: serving %d video(s) from catalog %s\n", opened,
                catalog_dir.c_str());
    std::fflush(stdout);
  } else {
    std::printf("svqd: ingesting %d demo video(s) at scale %.2f ...\n",
                videos, scale);
    std::fflush(stdout);
    for (int i = 0; i < videos; ++i) {
      auto video = MakeVideo(i, scale);
      if (!video.ok()) {
        std::fprintf(stderr, "svqd: video generation failed: %s\n",
                     video.status().ToString().c_str());
        return 1;
      }
      if (auto id = engine.AddVideo(*video); !id.ok()) {
        std::fprintf(stderr, "svqd: AddVideo failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
    }
    if (auto status = engine.IngestAll(); !status.ok()) {
      std::fprintf(stderr, "svqd: ingest failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  svq::server::Server server(&engine, options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "svqd: start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("svqd: listening on %s:%u (%d in flight, %d queued)\n",
              options.bind_address.c_str(), server.port(),
              options.max_in_flight, options.max_queue);
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }

  // Graceful drain on SIGINT/SIGTERM via the self-pipe trick: the handler
  // only writes a byte; the main thread does the actual shutdown.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "svqd: pipe failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("svqd: signal received, draining (budget %d ms) ...\n",
              drain_ms);
  std::fflush(stdout);
  server.Shutdown(std::chrono::milliseconds(drain_ms));
  const svq::server::ServerStatsWire stats = server.Stats();
  std::printf("svqd: drained. accepted=%lld ok=%lld rejected=%lld "
              "cancelled=%lld deadline_exceeded=%lld failed=%lld\n",
              static_cast<long long>(stats.queries_accepted),
              static_cast<long long>(stats.queries_ok),
              static_cast<long long>(stats.queries_rejected),
              static_cast<long long>(stats.queries_cancelled),
              static_cast<long long>(stats.queries_deadline_exceeded),
              static_cast<long long>(stats.queries_failed));
  if (!metrics_dump.empty()) {
    if (metrics_dump == "-") {
      std::fflush(stdout);
      server.DumpPrometheus(std::cout);
      std::cout.flush();
    } else {
      std::ofstream out(metrics_dump, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "svqd: cannot open metrics dump file '%s'\n",
                     metrics_dump.c_str());
        return 1;
      }
      server.DumpPrometheus(out);
    }
  }
  return 0;
}
