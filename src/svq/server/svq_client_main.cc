// svq_client — wire-level CLI for svqd: runs one statement (or the STATS
// verb) against a running daemon and prints the outcome.
//
//   ./build/svq_client --port 7331 "SELECT ..."          run a statement
//   ./build/svq_client --port 7331 --timeout-ms 50 "..."  with a deadline
//   ./build/svq_client --port 7331 --repeat 5 "..."       re-run, per-run
//                                                         latency (warms the
//                                                         server query cache)
//   ./build/svq_client --port 7331 --stats                server counters
//   ./build/svq_client --port 7331 --explain "..."         plan only
//   ./build/svq_client --port 7331 --explain-analyze "..."  plan + actuals
//   ./build/svq_client --port 7331 --subscribe "..."        standing query:
//                                      subscribe, feed the video through the
//                                      server, print pushed events
//
// Subscribe knobs: --feed NAME (default: the statement's video), --mode
// svaq|svaqd, --queue N (event queue capacity), --batch N (clips per FEED
// round trip), --min-events N (exit 2 unless at least N events arrived —
// for smoke tests).
//
// Exit codes: 0 = query OK; 2 = the server answered with a non-OK query
// status (printed; an Unavailable status with sequences attached is a
// cluster router's partial result — the surviving shards' sequences are
// printed before exiting); 3 = wire version mismatch (the peer speaks a different
// protocol revision — both versions are printed); 1 = usage or transport
// error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "svq/server/client.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A] [--port N] [--timeout-ms N] "
               "[--repeat N] [--explain | --explain-analyze] "
               "[--subscribe [--feed NAME] [--mode svaq|svaqd] [--queue N] "
               "[--batch N] [--min-events N]] "
               "(--stats | \"<statement>\")\n",
               argv0);
  return 1;
}

/// Prints a transport failure and picks the exit code: an Unimplemented
/// status is the wire's version-mismatch signal (either side refuses the
/// other's frames), reported with both versions and exit code 3 so scripts
/// can tell "upgrade one of the peers" from ordinary transport errors.
int TransportExit(const svq::Status& status) {
  std::fprintf(stderr, "svq_client: %s\n", status.ToString().c_str());
  if (status.code() != svq::StatusCode::kUnimplemented) return 1;
  // The refusing side names the version it saw: "unsupported wire
  // version <peer> ..." — parse it so both revisions appear even when the
  // refusal came from the legacy peer's terser message.
  int peer_version = -1;
  const std::string& message = status.message();
  const std::string needle = "wire version ";
  if (const size_t at = message.find(needle); at != std::string::npos) {
    peer_version = std::atoi(message.c_str() + at + needle.size());
  }
  if (peer_version > 0 &&
      peer_version != static_cast<int>(svq::server::kWireVersion)) {
    std::fprintf(stderr,
                 "svq_client: wire version mismatch: this client speaks "
                 "v%d, the server speaks v%d — upgrade the older peer\n",
                 static_cast<int>(svq::server::kWireVersion), peer_version);
  } else {
    std::fprintf(stderr,
                 "svq_client: wire version mismatch: this client speaks "
                 "v%d, the server refused it with: %s\n",
                 static_cast<int>(svq::server::kWireVersion),
                 message.c_str());
  }
  return 3;
}

void PrintHistogram(const char* verb,
                    const svq::server::WireHistogram& histogram) {
  std::printf("  %-6s count=%lld p50=%.1fms p99=%.1fms\n", verb,
              static_cast<long long>(histogram.count),
              histogram.PercentileMicros(0.50) / 1000.0,
              histogram.PercentileMicros(0.99) / 1000.0);
}

int RunStats(svq::server::Client& client) {
  auto stats = client.GetStats();
  if (!stats.ok()) return TransportExit(stats.status());
  std::printf("server stats:\n");
  std::printf("  accepted=%lld rejected=%lld ok=%lld failed=%lld "
              "cancelled=%lld deadline_exceeded=%lld\n",
              static_cast<long long>(stats->queries_accepted),
              static_cast<long long>(stats->queries_rejected),
              static_cast<long long>(stats->queries_ok),
              static_cast<long long>(stats->queries_failed),
              static_cast<long long>(stats->queries_cancelled),
              static_cast<long long>(stats->queries_deadline_exceeded));
  std::printf("  connections: open=%lld opened=%lld   queue_depth=%lld "
              "in_flight=%lld   stats_requests=%lld\n",
              static_cast<long long>(stats->connections_open),
              static_cast<long long>(stats->connections_opened),
              static_cast<long long>(stats->queue_depth),
              static_cast<long long>(stats->in_flight),
              static_cast<long long>(stats->stats_requests));
  PrintHistogram("QUERY", stats->query_latency);
  PrintHistogram("STATS", stats->stats_latency);
  // Query-cache summary up front; the raw per-tier counters follow in the
  // registry dump.
  auto metric = [&](const std::string& name) -> double {
    for (const auto& [entry_name, value] : stats->registry) {
      if (entry_name == name) return value;
    }
    return 0.0;
  };
  const double cache_hits = metric("svq_cache_hits_total");
  const double cache_misses = metric("svq_cache_misses_total");
  if (cache_hits + cache_misses > 0) {
    std::printf("  cache: hits=%.0f misses=%.0f (%.1f%% hit rate) "
                "evictions=%.0f bytes=%.0f\n",
                cache_hits, cache_misses,
                100.0 * cache_hits / (cache_hits + cache_misses),
                metric("svq_cache_evictions_total"),
                metric("svq_cache_bytes"));
  }
  if (!stats->registry.empty()) {
    std::printf("registry (%zu metrics):\n", stats->registry.size());
    for (const auto& [name, value] : stats->registry) {
      std::printf("  %-44s %.6g\n", name.c_str(), value);
    }
  }
  return 0;
}

int RunExplain(svq::server::Client& client, const std::string& statement,
               bool analyze, uint32_t timeout_ms) {
  auto response = client.Explain(statement, analyze, timeout_ms);
  if (!response.ok()) return TransportExit(response.status());
  if (!response->status.ok()) {
    std::printf("explain failed: %s\n", response->status.ToString().c_str());
    return 2;
  }
  std::printf("%s", response->text.c_str());
  return 0;
}

int RunQuery(svq::server::Client& client, const std::string& statement,
             uint32_t timeout_ms, int repeat) {
  // With --repeat N the statement is re-sent N times on the same
  // connection, printing one latency line per run: against a cache-enabled
  // server the first run is cold and the rest expose the warm path.
  for (int iteration = 1; iteration < repeat; ++iteration) {
    const auto t0 = std::chrono::steady_clock::now();
    auto response = client.Execute(statement, timeout_ms);
    const double total_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (!response.ok()) return TransportExit(response.status());
    if (!response->status.ok()) {
      std::printf("query failed: %s\n", response->status.ToString().c_str());
      return 2;
    }
    std::printf("run %d/%d: %.2f ms total (%.2f ms queued + %.2f ms "
                "executing), %zu sequence(s)\n",
                iteration, repeat, total_ms,
                response->metrics.server_queue_ms,
                response->metrics.server_exec_ms,
                response->sequences.size());
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto response = client.Execute(statement, timeout_ms);
  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  if (!response.ok()) return TransportExit(response.status());
  // A cluster router degrades to Unavailable when a shard is down but the
  // rest answered: the response still carries the surviving shards'
  // sequences. Print them (marked partial) so operators see what survived,
  // but keep the non-OK exit code — a partial answer is not a full one.
  const bool partial = response->status.IsUnavailable() &&
                       !response->sequences.empty();
  if (!response->status.ok() && !partial) {
    std::printf("query failed: %s\n", response->status.ToString().c_str());
    return 2;
  }
  if (partial) {
    std::printf("partial: %s\n", response->status.ToString().c_str());
  }
  if (repeat > 1) {
    std::printf("run %d/%d: %.2f ms total\n", repeat, repeat, total_ms);
  }
  std::printf("%s result: %zu sequence(s)\n",
              response->ranked ? "ranked" : "streaming",
              response->sequences.size());
  for (const auto& sequence : response->sequences) {
    if (response->ranked) {
      std::printf("  clips [%lld, %lld]  score=[%.2f, %.2f]\n",
                  static_cast<long long>(sequence.begin),
                  static_cast<long long>(sequence.end - 1),
                  sequence.lower_bound, sequence.upper_bound);
    } else {
      std::printf("  clips [%lld, %lld]\n",
                  static_cast<long long>(sequence.begin),
                  static_cast<long long>(sequence.end - 1));
    }
  }
  const auto& m = response->metrics;
  std::printf("  server: %.2f ms queued + %.2f ms executing\n",
              m.server_queue_ms, m.server_exec_ms);
  if (response->ranked) {
    std::printf("  engine: %lld random + %lld sorted accesses, "
                "%.0f ms virtual disk, %d thread(s)\n",
                static_cast<long long>(m.random_accesses),
                static_cast<long long>(m.sorted_accesses), m.virtual_ms,
                static_cast<int>(m.threads_used));
  } else {
    std::printf("  engine: %lld clips, %.0f ms simulated inference\n",
                static_cast<long long>(m.clips_processed), m.model_ms);
  }
  return partial ? 2 : 0;
}

int RunSubscribe(svq::server::Client& client, const std::string& statement,
                 const std::string& feed, uint8_t mode,
                 uint32_t queue_capacity, uint32_t timeout_ms, int64_t batch,
                 long min_events) {
  auto subscribed = client.Subscribe(feed, statement, mode, queue_capacity,
                                     timeout_ms);
  if (!subscribed.ok()) return TransportExit(subscribed.status());
  if (!subscribed->status.ok()) {
    std::printf("subscribe failed: %s\n",
                subscribed->status.ToString().c_str());
    return 2;
  }
  std::printf("subscription #%llu on feed '%s' (wire v%d)\n",
              static_cast<unsigned long long>(subscribed->subscription_id),
              subscribed->feed.c_str(),
              static_cast<int>(svq::server::kWireVersion));

  // Drive the feed through the server until its source video is exhausted;
  // events the server pushes between FEED round trips land in the client's
  // stash.
  bool closed = false;
  while (!closed) {
    auto fed = client.FeedClips(subscribed->feed, batch);
    if (!fed.ok()) return TransportExit(fed.status());
    if (!fed->status.ok()) {
      std::printf("feed failed: %s\n", fed->status.ToString().c_str());
      return 2;
    }
    closed = fed->feed_closed;
  }
  // Unsubscribe flushes every remaining event ahead of its acknowledgement,
  // so after this round trip the stash holds the subscription's full story.
  auto unsubscribed = client.Unsubscribe(subscribed->subscription_id);
  if (!unsubscribed.ok()) return TransportExit(unsubscribed.status());
  if (!unsubscribed->status.ok()) {
    std::printf("unsubscribe failed: %s\n",
                unsubscribed->status.ToString().c_str());
    return 2;
  }

  long events = 0, sequences = 0, gaps = 0;
  bool end_of_stream = false;
  while (client.stashed_events() > 0) {
    auto event = client.NextEvent();
    if (!event.ok()) return TransportExit(event.status());
    ++events;
    switch (event->kind) {
      case 1:
        ++sequences;
        std::printf("  sequence: clips [%lld, %lld]\n",
                    static_cast<long long>(event->begin),
                    static_cast<long long>(event->end - 1));
        break;
      case 2:
        ++gaps;
        std::printf("  gap: %lld event(s) dropped (%s)\n",
                    static_cast<long long>(event->dropped),
                    event->status.ToString().c_str());
        break;
      case 3:
        end_of_stream = true;
        std::printf("  end of stream\n");
        break;
      default:
        std::printf("  error: %s\n", event->status.ToString().c_str());
        break;
    }
  }
  std::printf("%ld event(s): %ld sequence(s), %ld gap(s), "
              "end-of-stream=%s\n",
              events, sequences, gaps, end_of_stream ? "yes" : "no");
  if (events < min_events) {
    std::fprintf(stderr,
                 "svq_client: expected at least %ld event(s), got %ld\n",
                 min_events, events);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t timeout_ms = 0;
  int repeat = 1;
  bool stats = false;
  bool explain = false;
  bool analyze = false;
  bool subscribe = false;
  std::string feed;
  uint8_t mode = 1;  // SVAQD
  uint32_t queue_capacity = 0;
  int64_t batch = 4;
  long min_events = 0;
  std::string statement;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      host = value;
    } else if (arg == "--port" && (value = next())) {
      port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--timeout-ms" && (value = next())) {
      timeout_ms = static_cast<uint32_t>(std::atol(value));
    } else if (arg == "--repeat" && (value = next())) {
      repeat = std::atoi(value);
      if (repeat < 1) return Usage(argv[0]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-analyze") {
      explain = true;
      analyze = true;
    } else if (arg == "--subscribe") {
      subscribe = true;
    } else if (arg == "--feed" && (value = next())) {
      feed = value;
    } else if (arg == "--mode" && (value = next())) {
      const std::string name = value;
      if (name == "svaq") {
        mode = 0;
      } else if (name == "svaqd") {
        mode = 1;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--queue" && (value = next())) {
      queue_capacity = static_cast<uint32_t>(std::atol(value));
    } else if (arg == "--batch" && (value = next())) {
      batch = std::atol(value);
      if (batch < 1) return Usage(argv[0]);
    } else if (arg == "--min-events" && (value = next())) {
      min_events = std::atol(value);
    } else if (!arg.empty() && arg[0] != '-' && statement.empty()) {
      statement = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (port == 0 || (statement.empty() && !stats)) return Usage(argv[0]);

  svq::server::Client client;
  if (auto status = client.Connect(host, port); !status.ok()) {
    std::fprintf(stderr, "svq_client: %s\n", status.ToString().c_str());
    return 1;
  }
  if (stats) return RunStats(client);
  if (explain) return RunExplain(client, statement, analyze, timeout_ms);
  if (subscribe) {
    return RunSubscribe(client, statement, feed, mode, queue_capacity,
                        timeout_ms, batch, min_events);
  }
  return RunQuery(client, statement, timeout_ms, repeat);
}
