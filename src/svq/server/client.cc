#include "svq/server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>

namespace svq::server {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect(const std::string& host, uint16_t port,
                       std::chrono::milliseconds recv_timeout,
                       std::chrono::milliseconds connect_timeout) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("invalid host address '" + host + "'");
  }
  const std::string endpoint = host + ":" + std::to_string(port);
  if (connect_timeout.count() <= 0) {
    // Historical behavior: blocking connect, bounded only by the kernel's
    // SYN-retry budget.
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status status(StatusCode::kIOError, "connect to " + endpoint +
                                                    ": " +
                                                    std::strerror(errno));
      Close();
      return status;
    }
  } else {
    // Non-blocking connect + poll: a black-holed endpoint (no SYN-ACK, no
    // RST) fails within `connect_timeout` instead of hanging the caller.
    // The cluster router's health checker depends on this bound.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
      const Status status(
          StatusCode::kIOError,
          std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
      Close();
      return status;
    }
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    if (rc < 0 && errno == EINTR) {
      // An interrupted connect proceeds asynchronously, same as
      // EINPROGRESS.
      rc = -1;
      errno = EINPROGRESS;
    }
    if (rc < 0) {
      if (errno != EINPROGRESS) {
        const Status status(StatusCode::kIOError, "connect to " + endpoint +
                                                      ": " +
                                                      std::strerror(errno));
        Close();
        return status;
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      const auto deadline =
          std::chrono::steady_clock::now() + connect_timeout;
      for (;;) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) {
          Close();
          return Status::IOError("connect to " + endpoint + ": timed out");
        }
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(remaining.count()));
        if (ready < 0) {
          if (errno == EINTR) continue;
          const Status status(
              StatusCode::kIOError,
              std::string("poll: ") + std::strerror(errno));
          Close();
          return status;
        }
        if (ready == 0) {
          Close();
          return Status::IOError("connect to " + endpoint + ": timed out");
        }
        break;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
          so_error != 0) {
        const Status status(
            StatusCode::kIOError,
            "connect to " + endpoint + ": " +
                std::strerror(so_error != 0 ? so_error : errno));
        Close();
        return status;
      }
    }
    if (::fcntl(fd_, F_SETFL, flags) < 0) {
      const Status status(
          StatusCode::kIOError,
          std::string("fcntl restore flags: ") + std::strerror(errno));
      Close();
      return status;
    }
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(recv_timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((recv_timeout.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return Status::OK();
}

Status Client::SendAll(const std::string& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::RecvPayload(std::string* payload) {
  for (;;) {
    bool has_frame = false;
    SVQ_RETURN_NOT_OK(assembler_.Next(payload, &has_frame));
    if (has_frame) return Status::OK();
    char buffer[65536];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      assembler_.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timed out waiting for the server");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Status Client::RecvExpected(MessageType expected, std::string* payload) {
  for (;;) {
    SVQ_RETURN_NOT_OK(RecvPayload(payload));
    WireCursor cursor(*payload);
    MessageType type = expected;
    SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
    if (type == MessageType::kEvent) {
      // A standing query pushed between our request and its response —
      // stash it for NextEvent and keep waiting.
      EventFrame event;
      SVQ_RETURN_NOT_OK(DecodeEvent(&cursor, &event));
      event_stash_.push_back(std::move(event));
      continue;
    }
    if (type != expected) {
      return Status::Corruption(
          "expected frame type " +
          std::to_string(static_cast<int>(expected)) + ", got " +
          std::to_string(static_cast<int>(type)));
    }
    return Status::OK();
  }
}

Result<QueryResponse> Client::Execute(const std::string& statement,
                                      uint32_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  QueryRequest request;
  request.request_id = next_request_id_++;
  request.statement = statement;
  request.timeout_ms = timeout_ms;
  SVQ_RETURN_NOT_OK(SendAll(EncodeQueryRequest(request)));

  std::string payload;
  SVQ_RETURN_NOT_OK(RecvExpected(MessageType::kQueryResponse, &payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kQueryResponse;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  QueryResponse response;
  SVQ_RETURN_NOT_OK(DecodeQueryResponse(&cursor, &response));
  if (response.request_id != request.request_id) {
    return Status::Corruption("response correlation id mismatch");
  }
  return response;
}

Result<ExplainResponse> Client::Explain(const std::string& statement,
                                        bool analyze, uint32_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  ExplainRequest request;
  request.request_id = next_request_id_++;
  request.statement = statement;
  request.analyze = analyze;
  request.timeout_ms = timeout_ms;
  SVQ_RETURN_NOT_OK(SendAll(EncodeExplainRequest(request)));

  std::string payload;
  SVQ_RETURN_NOT_OK(RecvExpected(MessageType::kExplainResponse, &payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kExplainResponse;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  ExplainResponse response;
  SVQ_RETURN_NOT_OK(DecodeExplainResponse(&cursor, &response));
  if (response.request_id != request.request_id) {
    return Status::Corruption("response correlation id mismatch");
  }
  return response;
}

Result<ServerStatsWire> Client::GetStats() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  SVQ_RETURN_NOT_OK(SendAll(EncodeStatsRequest()));
  std::string payload;
  SVQ_RETURN_NOT_OK(RecvExpected(MessageType::kStatsResponse, &payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsResponse;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  ServerStatsWire stats;
  SVQ_RETURN_NOT_OK(DecodeStatsResponse(&cursor, &stats));
  return stats;
}

Result<SubscribeResponse> Client::Subscribe(const std::string& feed,
                                            const std::string& statement,
                                            uint8_t mode,
                                            uint32_t queue_capacity,
                                            uint32_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  SubscribeRequest request;
  request.request_id = next_request_id_++;
  request.feed = feed;
  request.statement = statement;
  request.mode = mode;
  request.queue_capacity = queue_capacity;
  request.timeout_ms = timeout_ms;
  SVQ_RETURN_NOT_OK(SendAll(EncodeSubscribeRequest(request)));

  std::string payload;
  SVQ_RETURN_NOT_OK(RecvExpected(MessageType::kSubscribeResponse, &payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kSubscribeResponse;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  SubscribeResponse response;
  SVQ_RETURN_NOT_OK(DecodeSubscribeResponse(&cursor, &response));
  if (response.request_id != request.request_id) {
    return Status::Corruption("response correlation id mismatch");
  }
  return response;
}

Result<FeedResponse> Client::FeedClips(const std::string& feed,
                                       int64_t clip_count) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  FeedRequest request;
  request.request_id = next_request_id_++;
  request.feed = feed;
  request.clip_count = clip_count;
  SVQ_RETURN_NOT_OK(SendAll(EncodeFeedRequest(request)));

  std::string payload;
  SVQ_RETURN_NOT_OK(RecvExpected(MessageType::kFeedResponse, &payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kFeedResponse;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  FeedResponse response;
  SVQ_RETURN_NOT_OK(DecodeFeedResponse(&cursor, &response));
  if (response.request_id != request.request_id) {
    return Status::Corruption("response correlation id mismatch");
  }
  return response;
}

Result<UnsubscribeResponse> Client::Unsubscribe(uint64_t subscription_id) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  UnsubscribeRequest request;
  request.request_id = next_request_id_++;
  request.subscription_id = subscription_id;
  SVQ_RETURN_NOT_OK(SendAll(EncodeUnsubscribeRequest(request)));

  std::string payload;
  SVQ_RETURN_NOT_OK(
      RecvExpected(MessageType::kUnsubscribeResponse, &payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kUnsubscribeResponse;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  UnsubscribeResponse response;
  SVQ_RETURN_NOT_OK(DecodeUnsubscribeResponse(&cursor, &response));
  if (response.request_id != request.request_id) {
    return Status::Corruption("response correlation id mismatch");
  }
  return response;
}

Result<EventFrame> Client::NextEvent() {
  if (!event_stash_.empty()) {
    EventFrame event = std::move(event_stash_.front());
    event_stash_.pop_front();
    return event;
  }
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string payload;
  SVQ_RETURN_NOT_OK(RecvPayload(&payload));
  WireCursor cursor(payload);
  MessageType type = MessageType::kEvent;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  if (type != MessageType::kEvent) {
    return Status::Corruption("expected an event frame");
  }
  EventFrame event;
  SVQ_RETURN_NOT_OK(DecodeEvent(&cursor, &event));
  return event;
}

}  // namespace svq::server
