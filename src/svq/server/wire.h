#ifndef SVQ_SERVER_WIRE_H_
#define SVQ_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "svq/common/status.h"

namespace svq::server {

/// The svqd framing protocol (docs/server.md). Every message is one frame:
///
///   [u32 payload_length (LE)] [payload]
///   payload := [u8 version] [u8 message_type] [message body]
///
/// All integers are little-endian and fixed width; strings are a u32 length
/// followed by raw bytes; doubles travel as their IEEE-754 bit pattern in a
/// u64. The payload length excludes the 4-byte header. Frames above the
/// receiver's configured maximum are a protocol error (the stream cannot be
/// resynchronized and the connection is closed), so a hostile peer cannot
/// make the server buffer unboundedly.
///
/// Version history: v1 — initial protocol; v2 — STATS responses carry the
/// flattened metrics-registry entries after the fixed counter block;
/// v3 — EXPLAIN verb (plan text for a statement, optionally executed
/// under ANALYZE); v4 — streaming verbs (SUBSCRIBE / FEED / UNSUBSCRIBE)
/// plus server-pushed EVENT frames for standing queries
/// (docs/streaming.md).
inline constexpr uint8_t kWireVersion = 4;
inline constexpr size_t kFrameHeaderBytes = 4;
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Frame payload discriminator (second payload byte).
enum class MessageType : uint8_t {
  kQueryRequest = 1,    ///< QUERY verb: statement + per-request timeout
  kStatsRequest = 2,    ///< STATS verb: cumulative server counters
  kQueryResponse = 3,
  kStatsResponse = 4,
  kExplainRequest = 5,  ///< EXPLAIN verb: render the statement's plan
  kExplainResponse = 6,
  // v4 streaming verbs (docs/streaming.md). EVENT frames are the one
  // server-initiated message of the protocol: they may arrive at any time
  // between a subscriber's request/response pairs.
  kSubscribeRequest = 7,    ///< SUBSCRIBE verb: register a standing query
  kSubscribeResponse = 8,
  kFeedRequest = 9,         ///< FEED verb: dispatch clips into a feed
  kFeedResponse = 10,
  kEvent = 11,              ///< server push: one subscription event
  kUnsubscribeRequest = 12, ///< UNSUBSCRIBE verb: tear down a subscription
  kUnsubscribeResponse = 13,
};

// ---------------------------------------------------------------------------
// Low-level append/read primitives (exposed for tests).

void AppendU8(std::string* out, uint8_t value);
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
void AppendI64(std::string* out, int64_t value);
void AppendF64(std::string* out, double value);
void AppendString(std::string* out, std::string_view value);

/// Bounds-checked sequential reader over an untrusted payload. Every Read*
/// returns Corruption instead of overrunning; a decode is complete only
/// when the caller also verifies AtEnd().
class WireCursor {
 public:
  explicit WireCursor(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU8(uint8_t* value);
  Status ReadU32(uint32_t* value);
  Status ReadU64(uint64_t* value);
  Status ReadI64(int64_t* value);
  Status ReadF64(double* value);
  Status ReadString(std::string* value);

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Need(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Messages.

/// QUERY verb request: one dialect statement plus the client's deadline,
/// which the server turns into an ExecutionContext deadline so an expired
/// request is cancelled server-side instead of running to completion.
struct QueryRequest {
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t request_id = 0;
  /// Statement text in the SVQ-ACT dialect (docs/QUERY_LANGUAGE.md).
  std::string statement;
  /// Per-request budget in milliseconds; 0 means unlimited.
  uint32_t timeout_ms = 0;
};

/// One result sequence. Ranked statements carry certified score bounds;
/// streaming statements report intervals only (bounds are zero).
struct WireSequence {
  int64_t begin = 0;
  int64_t end = 0;
  double lower_bound = 0.0;
  double upper_bound = 0.0;

  friend bool operator==(const WireSequence&, const WireSequence&) = default;
};

/// Per-query accounting mirrored over the wire: the engine-side storage /
/// runtime / timing counters, plus the two server-side components of the
/// observed latency (time queued behind admission control and time
/// executing).
struct WireQueryMetrics {
  int64_t sorted_accesses = 0;
  int64_t random_accesses = 0;
  int64_t sequential_reads = 0;
  double virtual_ms = 0.0;
  double algorithm_ms = 0.0;
  double model_ms = 0.0;
  int64_t clips_processed = 0;
  int64_t threads_used = 1;
  int64_t tasks_executed = 0;
  double fanout_ms = 0.0;
  double server_queue_ms = 0.0;
  double server_exec_ms = 0.0;

  friend bool operator==(const WireQueryMetrics&,
                         const WireQueryMetrics&) = default;
};

/// QUERY verb response. `status` is the statement's full outcome
/// (kResourceExhausted = rejected by admission control before execution;
/// kDeadlineExceeded / kCancelled = terminated mid-execution); sequences
/// and metrics are meaningful only when it is OK.
struct QueryResponse {
  uint64_t request_id = 0;
  Status status;
  bool ranked = false;
  std::vector<WireSequence> sequences;
  WireQueryMetrics metrics;
};

/// EXPLAIN verb request (v3): render the cost-based plan for a statement
/// against the server's current catalog snapshot. With `analyze` the
/// statement is also executed (through admission control, like QUERY) and
/// actual rows/timings are rendered beside the estimates.
struct ExplainRequest {
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t request_id = 0;
  /// Statement text; a leading EXPLAIN [ANALYZE] prefix is accepted too.
  std::string statement;
  /// EXPLAIN ANALYZE: execute and annotate with actuals.
  bool analyze = false;
  /// Per-request budget in milliseconds; 0 means unlimited. Only
  /// meaningful under `analyze`, where the statement really runs.
  uint32_t timeout_ms = 0;
};

/// EXPLAIN verb response: the rendered plan text, meaningful only when
/// `status` is OK.
struct ExplainResponse {
  uint64_t request_id = 0;
  Status status;
  std::string text;
};

/// SUBSCRIBE verb request (v4): register a standing streaming statement
/// against a named feed. The server answers with a SubscribeResponse and
/// then pushes Event frames as the feed advances (docs/streaming.md).
struct SubscribeRequest {
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t request_id = 0;
  /// Feed name; empty means "the statement's FROM video" — the server
  /// creates the feed over that video on first use.
  std::string feed;
  /// Standing statement text; must be a streaming (non-ranked) statement.
  std::string statement;
  /// Online engine mode: 0 = SVAQ (static background), 1 = SVAQD
  /// (drift-adaptive). Other values are rejected.
  uint8_t mode = 1;
  /// Per-subscriber event queue capacity; 0 means the server default. A
  /// slow consumer overflowing this queue receives gap markers instead of
  /// stalling the feed.
  uint32_t queue_capacity = 0;
  /// Subscription lifetime budget in milliseconds; 0 means unlimited.
  uint32_t timeout_ms = 0;
};

/// SUBSCRIBE verb response. `subscription_id` and `feed` are meaningful
/// only when `status` is OK; the id tags every subsequent Event frame and
/// is what UNSUBSCRIBE takes.
struct SubscribeResponse {
  uint64_t request_id = 0;
  Status status;
  uint64_t subscription_id = 0;
  /// The resolved feed name (echoes the request's, or the statement's
  /// video when the request left it empty).
  std::string feed;
};

/// FEED verb request (v4): dispatch up to `clip_count` clips of the feed's
/// source video into the feed, fanning each clip out to every standing
/// subscription. Exhausting the source closes the feed and flushes
/// end-of-stream events to all subscribers.
struct FeedRequest {
  uint64_t request_id = 0;
  std::string feed;
  /// Number of clips to dispatch; must be >= 1.
  int64_t clip_count = 0;
};

/// FEED verb response: how far the feed advanced.
struct FeedResponse {
  uint64_t request_id = 0;
  Status status;
  /// Clips actually dispatched by this request.
  int64_t clips_dispatched = 0;
  /// Cursor after the dispatch (next clip index to be fed).
  int64_t next_clip = 0;
  /// The source was exhausted and the feed closed; subscribers have been
  /// sent their end-of-stream events.
  bool feed_closed = false;
};

/// Server-pushed subscription event (v4) — the only server-initiated
/// frame. `kind` mirrors stream::StreamEvent::Kind: 1 = completed result
/// sequence [begin, end); 2 = gap marker (`dropped` events were evicted
/// from a lagging subscriber's queue; `status` is kResourceExhausted);
/// 3 = end of stream; 4 = stream error (`status` says why). Kinds 3 and 4
/// are terminal — no further events follow for this subscription.
struct EventFrame {
  uint64_t subscription_id = 0;
  uint8_t kind = 0;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t dropped = 0;
  Status status;
};

/// UNSUBSCRIBE verb request (v4): tear down a subscription. Pending events
/// are flushed to the client before the response frame, so everything the
/// subscription produced is delivered ahead of the acknowledgement.
struct UnsubscribeRequest {
  uint64_t request_id = 0;
  uint64_t subscription_id = 0;
};

struct UnsubscribeResponse {
  uint64_t request_id = 0;
  Status status;
};

/// Fixed-layout latency histogram: bucket i counts observations in
/// [2^i, 2^(i+1)) microseconds; the last bucket absorbs everything larger
/// (~67 s and up).
inline constexpr int kLatencyBuckets = 27;

struct WireHistogram {
  int64_t count = 0;
  std::vector<int64_t> buckets = std::vector<int64_t>(kLatencyBuckets, 0);

  /// Inclusive upper bound of bucket `i` in microseconds.
  static double BucketUpperMicros(int i);
  /// Approximate percentile (0 <= p <= 1) from the bucket upper bounds;
  /// 0 when empty.
  double PercentileMicros(double p) const;

  friend bool operator==(const WireHistogram&,
                         const WireHistogram&) = default;
};

/// STATS verb response: cumulative counters since server start plus
/// instantaneous gauges and per-verb latency histograms.
struct ServerStatsWire {
  // Admission outcomes (cumulative).
  int64_t queries_accepted = 0;   ///< admitted past admission control
  int64_t queries_rejected = 0;   ///< turned away (queue full or draining)
  // Execution outcomes (cumulative; partition the accepted queries).
  int64_t queries_ok = 0;
  int64_t queries_failed = 0;     ///< non-OK other than cancel/deadline
  int64_t queries_cancelled = 0;  ///< client vanished or drain cancelled it
  int64_t queries_deadline_exceeded = 0;
  int64_t stats_requests = 0;
  int64_t connections_opened = 0;
  // Instantaneous gauges.
  int64_t connections_open = 0;
  int64_t queue_depth = 0;
  int64_t in_flight = 0;
  // Per-verb latency (QUERY measured from admission to response encode,
  // STATS from receipt to response encode).
  WireHistogram query_latency;
  WireHistogram stats_latency;
  // v2: the server's full metrics registry, flattened to (name, value)
  // pairs (MetricsSnapshot::Flatten) — every counter and gauge verbatim
  // plus `<histogram>_count` / `<histogram>_sum_micros` per histogram.
  // Sorted by name; the fixed counters above stay for cheap access.
  std::vector<std::pair<std::string, double>> registry;

  friend bool operator==(const ServerStatsWire&,
                         const ServerStatsWire&) = default;
};

// ---------------------------------------------------------------------------
// Frame encode/decode.

/// Builds a complete frame (header + version + type + body).
std::string EncodeFrame(MessageType type, std::string_view body);

std::string EncodeQueryRequest(const QueryRequest& request);
std::string EncodeStatsRequest();
std::string EncodeQueryResponse(const QueryResponse& response);
std::string EncodeStatsResponse(const ServerStatsWire& stats);
std::string EncodeExplainRequest(const ExplainRequest& request);
std::string EncodeExplainResponse(const ExplainResponse& response);
std::string EncodeSubscribeRequest(const SubscribeRequest& request);
std::string EncodeSubscribeResponse(const SubscribeResponse& response);
std::string EncodeFeedRequest(const FeedRequest& request);
std::string EncodeFeedResponse(const FeedResponse& response);
std::string EncodeEvent(const EventFrame& event);
std::string EncodeUnsubscribeRequest(const UnsubscribeRequest& request);
std::string EncodeUnsubscribeResponse(const UnsubscribeResponse& response);

/// Reads the version and type bytes of a complete frame payload and leaves
/// `cursor` positioned at the body. Errors: Corruption (truncated);
/// Unimplemented (version mismatch — a newer peer).
Status DecodePayloadHeader(WireCursor* cursor, MessageType* type);

/// Body decoders; `cursor` must be positioned past the payload header.
/// Every decoder verifies the body is fully consumed.
Status DecodeQueryRequest(WireCursor* cursor, QueryRequest* request);
Status DecodeQueryResponse(WireCursor* cursor, QueryResponse* response);
Status DecodeStatsResponse(WireCursor* cursor, ServerStatsWire* stats);
Status DecodeExplainRequest(WireCursor* cursor, ExplainRequest* request);
Status DecodeExplainResponse(WireCursor* cursor, ExplainResponse* response);
Status DecodeSubscribeRequest(WireCursor* cursor, SubscribeRequest* request);
Status DecodeSubscribeResponse(WireCursor* cursor,
                               SubscribeResponse* response);
Status DecodeFeedRequest(WireCursor* cursor, FeedRequest* request);
Status DecodeFeedResponse(WireCursor* cursor, FeedResponse* response);
Status DecodeEvent(WireCursor* cursor, EventFrame* event);
Status DecodeUnsubscribeRequest(WireCursor* cursor,
                                UnsubscribeRequest* request);
Status DecodeUnsubscribeResponse(WireCursor* cursor,
                                 UnsubscribeResponse* response);

// ---------------------------------------------------------------------------
// Incremental frame assembly (the read path of both peers).

/// Accumulates raw stream bytes and yields complete frame payloads.
/// Enforces the frame-size cap *from the header*, before buffering the
/// payload, so a hostile length prefix cannot balloon memory.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `n` raw bytes from the stream.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete payload if one is buffered. Returns OK and
  /// sets `*has_frame` accordingly; returns InvalidArgument when the stream
  /// is unrecoverable (frame longer than the cap) — the connection must be
  /// dropped.
  Status Next(std::string* payload, bool* has_frame);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace svq::server

#endif  // SVQ_SERVER_WIRE_H_
