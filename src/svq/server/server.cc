#include "svq/server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "svq/query/executor.h"
#include "svq/query/explain.h"

namespace svq::server {

namespace {

using Clock = ExecutionContext::Clock;

double ElapsedMs(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

/// Converts one engine result into the wire representation. Streaming
/// statements carry plain intervals; ranked statements carry certified
/// score bounds and the storage/runtime accounting.
void FillResponse(const query::StatementResult& statement,
                  QueryResponse* response) {
  if (statement.topk.has_value()) {
    response->ranked = true;
    for (const core::RankedSequence& sequence : statement.topk->sequences) {
      response->sequences.push_back({sequence.clips.begin,
                                     sequence.clips.end,
                                     sequence.lower_bound,
                                     sequence.upper_bound});
    }
    const core::OfflineRunStats& stats = statement.topk->stats;
    response->metrics.sorted_accesses = stats.storage.sorted_accesses;
    response->metrics.random_accesses = stats.storage.random_accesses;
    response->metrics.sequential_reads = stats.storage.sequential_reads;
    response->metrics.virtual_ms = stats.virtual_ms;
    response->metrics.algorithm_ms = stats.algorithm_ms;
    response->metrics.threads_used = stats.runtime.threads_used;
    response->metrics.tasks_executed = stats.runtime.tasks_executed;
    response->metrics.fanout_ms = stats.runtime.fanout_ms;
    return;
  }
  if (statement.repo.has_value()) {
    // Whole-repository broadcast (PROCESS *): per-video entries, already
    // globally merged by score. The wire sequence carries the certified
    // bounds; video attribution stays server-side (the cluster layer
    // re-merges by score + stable position, not by video id).
    response->ranked = true;
    for (const core::RepositoryEntry& entry : statement.repo->sequences) {
      response->sequences.push_back({entry.sequence.clips.begin,
                                     entry.sequence.clips.end,
                                     entry.sequence.lower_bound,
                                     entry.sequence.upper_bound});
    }
    const core::OfflineRunStats& stats = statement.repo->stats;
    response->metrics.sorted_accesses = stats.storage.sorted_accesses;
    response->metrics.random_accesses = stats.storage.random_accesses;
    response->metrics.sequential_reads = stats.storage.sequential_reads;
    response->metrics.virtual_ms = stats.virtual_ms;
    response->metrics.algorithm_ms = stats.algorithm_ms;
    response->metrics.threads_used = stats.runtime.threads_used;
    response->metrics.tasks_executed = stats.runtime.tasks_executed;
    response->metrics.fanout_ms = stats.runtime.fanout_ms;
    return;
  }
  if (statement.online.has_value()) {
    for (const video::Interval& interval :
         statement.online->sequences.intervals()) {
      response->sequences.push_back({interval.begin, interval.end, 0.0, 0.0});
    }
    const core::OnlineStats& stats = statement.online->stats;
    response->metrics.model_ms = stats.model_ms;
    response->metrics.algorithm_ms = stats.algorithm_ms;
    response->metrics.clips_processed = stats.clips_processed;
  }
}

/// Registry histograms and the wire's latency histograms share one bucket
/// layout, so snapshots travel losslessly over STATS.
static_assert(observability::kHistogramBuckets == kLatencyBuckets);

WireHistogram ToWireHistogram(const observability::HistogramSnapshot& snap) {
  WireHistogram wire;
  wire.count = snap.count;
  wire.buckets.assign(snap.buckets.begin(), snap.buckets.end());
  return wire;
}

}  // namespace

Server::Server(core::VideoQueryEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  queries_accepted_ = registry_.counter(
      "svqd_queries_accepted_total", "Queries admitted past admission control");
  queries_rejected_ = registry_.counter(
      "svqd_queries_rejected_total", "Queries turned away (queue full or draining)");
  queries_ok_ = registry_.counter("svqd_queries_ok_total",
                                  "Queries that completed successfully");
  queries_failed_ = registry_.counter(
      "svqd_queries_failed_total", "Queries that failed (excluding cancel/deadline)");
  queries_cancelled_ = registry_.counter("svqd_queries_cancelled_total",
                                         "Queries cancelled by client or drain");
  queries_deadline_exceeded_ = registry_.counter(
      "svqd_queries_deadline_exceeded_total", "Queries past their deadline");
  stats_requests_ = registry_.counter("svqd_stats_requests_total",
                                      "STATS verb requests served");
  explain_requests_ = registry_.counter("svqd_explain_requests_total",
                                        "EXPLAIN verb requests admitted");
  connections_opened_ = registry_.counter("svqd_connections_opened_total",
                                          "Connections accepted since start");
  connections_open_gauge_ =
      registry_.gauge("svqd_connections_open", "Connections currently open");
  queue_depth_gauge_ =
      registry_.gauge("svqd_queue_depth", "Queries queued behind admission");
  in_flight_gauge_ =
      registry_.gauge("svqd_in_flight", "Queries currently executing");
  query_latency_ = registry_.histogram(
      "svqd_query_latency_micros", "QUERY latency, admission to response encode");
  stats_latency_ = registry_.histogram(
      "svqd_stats_latency_micros", "STATS latency, receipt to response encode");
  phase_parse_ =
      registry_.histogram("svqd_phase_parse_micros", "Statement parse time");
  phase_bind_ =
      registry_.histogram("svqd_phase_bind_micros", "Statement bind time");
  phase_plan_ = registry_.histogram("svqd_phase_plan_micros",
                                    "Suite resolution / planning time");
  phase_execute_ = registry_.histogram("svqd_phase_execute_micros",
                                       "Engine execution time");
  storage_sorted_accesses_ = registry_.counter(
      "svq_storage_sorted_accesses_total", "Sorted table accesses across queries");
  storage_random_accesses_ = registry_.counter(
      "svq_storage_random_accesses_total", "Random table accesses across queries");
  storage_sequential_reads_ = registry_.counter(
      "svq_storage_sequential_reads_total", "Sequential reads across queries");
  storage_virtual_disk_ms_ = registry_.counter(
      "svq_storage_virtual_disk_ms_total", "Modeled disk time across queries (ms)");
  inference_model_ms_ = registry_.counter(
      "svq_inference_model_ms_total", "Model inference time across queries (ms)");
  online_clips_processed_ = registry_.counter(
      "svq_online_clips_processed_total", "Clips processed by streaming queries");
  runtime_tasks_executed_ = registry_.counter(
      "svq_runtime_tasks_executed_total", "Runtime fan-out tasks across queries");
  runtime_fanout_ms_ = registry_.counter(
      "svq_runtime_fanout_ms_total", "Runtime fan-out wall time across queries (ms)");
  engine_algorithm_ms_ = registry_.counter(
      "svq_engine_algorithm_ms_total", "Engine algorithm time across queries (ms)");
  cache_hits_ = registry_.counter("svq_cache_hits_total",
                                  "Query cache hits, all tiers");
  cache_misses_ = registry_.counter("svq_cache_misses_total",
                                    "Query cache misses, all tiers");
  cache_evictions_ = registry_.counter("svq_cache_evictions_total",
                                       "Query cache LRU evictions");
  cache_candidate_hits_ = registry_.counter(
      "svq_cache_candidate_hits_total", "Candidate-sequence cache hits");
  cache_candidate_misses_ = registry_.counter(
      "svq_cache_candidate_misses_total", "Candidate-sequence cache misses");
  cache_result_hits_ = registry_.counter("svq_cache_result_hits_total",
                                         "Top-K result cache hits");
  cache_result_misses_ = registry_.counter("svq_cache_result_misses_total",
                                           "Top-K result cache misses");
  cache_kcrit_hits_ = registry_.counter(
      "svq_cache_kcrit_hits_total", "Shared k_crit table hits");
  cache_kcrit_computes_ = registry_.counter(
      "svq_cache_kcrit_computes_total",
      "Critical-value computations (shared-table misses)");
  cache_single_flight_waits_ = registry_.counter(
      "svq_cache_single_flight_waits_total",
      "Duplicate in-flight statements deduplicated by single-flight");
  cache_bytes_gauge_ = registry_.gauge("svq_cache_bytes",
                                       "Live query-cache bytes, all tiers");
  plan_plans_ = registry_.counter("svq_plan_plans_total",
                                  "Physical plans produced (cache hits included)");
  plan_cache_hits_ = registry_.counter("svq_plan_cache_hits_total",
                                       "Plans served from the snapshot plan tier");
  plan_auto_rvaq_ = registry_.counter("svq_plan_auto_rvaq_total",
                                      "Cost-based selections of RVAQ");
  plan_auto_fagin_ = registry_.counter("svq_plan_auto_fagin_total",
                                       "Cost-based selections of Fagin");
  plan_auto_pq_traverse_ = registry_.counter(
      "svq_plan_auto_pq_traverse_total", "Cost-based selections of Pq-Traverse");
  plan_overrides_ = registry_.counter(
      "svq_plan_overrides_total", "Ranked statements with an explicit algorithm");
  plan_estimate_samples_ = registry_.counter(
      "svq_plan_estimate_samples_total",
      "Executed plans with estimate-vs-actual candidate comparisons");
  plan_estimate_error_pct_sum_ = registry_.counter(
      "svq_plan_estimate_error_pct_sum",
      "Accumulated absolute candidate-clip estimate error (percent of actual)");
  // The planner counters are process-global; baseline them here so this
  // server only reports planning activity from its own lifetime.
  last_plan_ = plan::GlobalPlannerCounters().Read();

  subscribe_requests_ = registry_.counter("svqd_subscribe_requests_total",
                                          "SUBSCRIBE verb requests admitted");
  feed_requests_ = registry_.counter("svqd_feed_requests_total",
                                     "FEED verb requests admitted");
  unsubscribe_requests_ = registry_.counter(
      "svqd_unsubscribe_requests_total", "UNSUBSCRIBE verb requests admitted");
  stream_feeds_ = registry_.counter("svq_stream_feeds_total",
                                    "Live feeds created since start");
  stream_feeds_open_gauge_ =
      registry_.gauge("svq_stream_feeds_open", "Live feeds currently open");
  stream_subscriptions_ = registry_.counter(
      "svq_stream_subscriptions_total", "Standing queries registered");
  stream_subscriptions_active_gauge_ = registry_.gauge(
      "svq_stream_subscriptions_active", "Standing queries currently active");
  stream_clips_dispatched_ = registry_.counter(
      "svq_stream_clips_dispatched_total", "Clips dispatched into feeds");
  stream_events_pushed_ = registry_.counter(
      "svq_stream_events_pushed_total", "Events queued to subscribers");
  stream_events_dropped_ = registry_.counter(
      "svq_stream_events_dropped_total",
      "Events discarded by the lag/drop policy");
  stream_model_units_run_ = registry_.counter(
      "svq_stream_model_units_run_total",
      "Inference units the shared models actually executed");
  stream_model_units_charged_ = registry_.counter(
      "svq_stream_model_units_charged_total",
      "Inference units dedicated per-query models would have executed");
  stream_model_ms_run_ = registry_.counter(
      "svq_stream_model_ms_run_total",
      "Model time actually executed by shared inference (ms)");
  stream_model_ms_charged_ = registry_.counter(
      "svq_stream_model_ms_charged_total",
      "Model time dedicated per-query models would have spent (ms)");

  stream::StreamOptions stream_options;
  stream_options.event_queue_capacity = options_.stream_event_queue_capacity;
  stream_options.max_subscriptions_per_feed =
      options_.max_subscriptions_per_feed;
  dispatcher_ =
      std::make_unique<stream::StreamDispatcher>(engine_, stream_options);
  dispatcher_->set_event_callback(
      [this](uint64_t subscription_id) { OnStreamEvent(subscription_id); });
}

Server::~Server() { Shutdown(std::chrono::milliseconds(0)); }

Status Server::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (engine_ == nullptr) return Status::InvalidArgument("engine must be set");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status(StatusCode::kIOError,
                        std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status(StatusCode::kIOError,
                        std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  started_ = true;
  const int workers = std::max(1, options_.max_in_flight);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  io_thread_ = std::thread([this]() { IoLoop(); });
  return Status::OK();
}

void Server::WakeIo() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  // EAGAIN means a wake is already pending — exactly what we need.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

// ---------------------------------------------------------------------------
// IO thread.

void Server::IoLoop() {
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<ConnectionPtr> polled;
    size_t listen_index = SIZE_MAX;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (draining_ && listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      if (stop_io_) {
        bool pending = false;
        for (const auto& [id, conn] : connections_) {
          if (!conn->outbox.empty()) {
            pending = true;
            break;
          }
        }
        if (!pending || Clock::now() >= io_flush_deadline_) break;
      }
      fds.push_back({wake_read_fd_, POLLIN, 0});
      if (listen_fd_ >= 0) {
        listen_index = fds.size();
        fds.push_back({listen_fd_, POLLIN, 0});
      }
      for (const auto& [id, conn] : connections_) {
        short events = POLLIN;
        if (!conn->outbox.empty()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
        polled.push_back(conn);
      }
    }
    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/100) < 0) {
      // EINTR: a signal (e.g. the drain handler) interrupted the wait —
      // loop and re-poll. Any other failure leaves revents unspecified, so
      // fall through to the next round rather than acting on them.
      continue;
    }

    if (fds[0].revents & POLLIN) {
      char scratch[256];
      while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    if (listen_index != SIZE_MAX && (fds[listen_index].revents & POLLIN)) {
      AcceptPending();
    }
    const size_t conn_base = fds.size() - polled.size();
    for (size_t i = 0; i < polled.size(); ++i) {
      const ConnectionPtr& conn = polled[i];
      const short revents = fds[conn_base + i].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        ReadFromConnection(conn);
      }
      if (conn->fd >= 0) FlushConnection(conn);
    }
  }
}

void Server::AcceptPending() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;  // interrupted: retry immediately
      return;  // EAGAIN or a transient error: try next poll round
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(options_.max_frame_bytes);
    conn->id = next_connection_id_++;
    conn->fd = fd;
    connections_.emplace(conn->id, conn);
    connections_opened_->Increment();
  }
}

void Server::ReadFromConnection(const ConnectionPtr& conn) {
  char buffer[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->assembler.Feed(buffer, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // interrupted: retry the recv
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or a hard error: the peer is gone.
    CloseConnection(conn);
    return;
  }
  for (;;) {
    std::string payload;
    bool has_frame = false;
    const Status status = conn->assembler.Next(&payload, &has_frame);
    if (!status.ok()) {
      // Oversized frame: the stream cannot be resynchronized.
      CloseConnection(conn);
      return;
    }
    if (!has_frame) return;
    HandlePayload(conn, payload);
    if (conn->fd < 0) return;
  }
}

void Server::HandlePayload(const ConnectionPtr& conn,
                           const std::string& payload) {
  const Clock::time_point received = Clock::now();
  WireCursor cursor(payload);
  MessageType type = MessageType::kQueryRequest;
  const Status header = DecodePayloadHeader(&cursor, &type);
  if (!header.ok()) {
    // Unknown version or type: answer once, then drop the connection — the
    // peer speaks a different protocol.
    QueryResponse response;
    response.status = header;
    std::lock_guard<std::mutex> lock(mu_);
    SendLocked(conn, EncodeQueryResponse(response));
    conn->close_after_flush = true;
    return;
  }
  switch (type) {
    case MessageType::kStatsRequest: {
      std::string frame;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_requests_->Increment();
        frame = EncodeStatsResponse(StatsLocked());
        SendLocked(conn, std::move(frame));
      }
      stats_latency_->Record(ElapsedMs(received, Clock::now()) * 1000.0);
      return;
    }
    case MessageType::kQueryRequest: {
      QueryRequest request;
      const Status decoded = DecodeQueryRequest(&cursor, &request);
      std::lock_guard<std::mutex> lock(mu_);
      if (!decoded.ok()) {
        QueryResponse response;
        response.request_id = request.request_id;
        response.status = decoded;
        SendLocked(conn, EncodeQueryResponse(response));
        return;
      }
      PendingQuery pending;
      pending.verb = PendingQuery::Verb::kQuery;
      pending.request = std::move(request);
      AdmitLocked(conn, std::move(pending));
      return;
    }
    case MessageType::kExplainRequest: {
      ExplainRequest request;
      const Status decoded = DecodeExplainRequest(&cursor, &request);
      std::lock_guard<std::mutex> lock(mu_);
      if (!decoded.ok()) {
        ExplainResponse response;
        response.request_id = request.request_id;
        response.status = decoded;
        SendLocked(conn, EncodeExplainResponse(response));
        return;
      }
      // EXPLAIN rides the same admission queue as QUERY: under ANALYZE the
      // statement genuinely executes, so it must compete for workers like
      // any query instead of bypassing admission control.
      PendingQuery pending;
      pending.verb = PendingQuery::Verb::kExplain;
      pending.explain_analyze = request.analyze;
      pending.request.request_id = request.request_id;
      pending.request.statement = std::move(request.statement);
      pending.request.timeout_ms = request.timeout_ms;
      AdmitLocked(conn, std::move(pending));
      return;
    }
    case MessageType::kSubscribeRequest: {
      SubscribeRequest request;
      const Status decoded = DecodeSubscribeRequest(&cursor, &request);
      std::lock_guard<std::mutex> lock(mu_);
      if (!decoded.ok()) {
        SubscribeResponse response;
        response.request_id = request.request_id;
        response.status = decoded;
        SendLocked(conn, EncodeSubscribeResponse(response));
        return;
      }
      PendingQuery pending;
      pending.verb = PendingQuery::Verb::kSubscribe;
      pending.subscribe = std::move(request);
      AdmitLocked(conn, std::move(pending));
      return;
    }
    case MessageType::kFeedRequest: {
      FeedRequest request;
      const Status decoded = DecodeFeedRequest(&cursor, &request);
      std::lock_guard<std::mutex> lock(mu_);
      if (!decoded.ok()) {
        FeedResponse response;
        response.request_id = request.request_id;
        response.status = decoded;
        SendLocked(conn, EncodeFeedResponse(response));
        return;
      }
      PendingQuery pending;
      pending.verb = PendingQuery::Verb::kFeed;
      pending.feed = std::move(request);
      AdmitLocked(conn, std::move(pending));
      return;
    }
    case MessageType::kUnsubscribeRequest: {
      UnsubscribeRequest request;
      const Status decoded = DecodeUnsubscribeRequest(&cursor, &request);
      std::lock_guard<std::mutex> lock(mu_);
      if (!decoded.ok()) {
        UnsubscribeResponse response;
        response.request_id = request.request_id;
        response.status = decoded;
        SendLocked(conn, EncodeUnsubscribeResponse(response));
        return;
      }
      PendingQuery pending;
      pending.verb = PendingQuery::Verb::kUnsubscribe;
      pending.unsubscribe = request;
      AdmitLocked(conn, std::move(pending));
      return;
    }
    case MessageType::kQueryResponse:
    case MessageType::kStatsResponse:
    case MessageType::kExplainResponse:
    case MessageType::kSubscribeResponse:
    case MessageType::kFeedResponse:
    case MessageType::kEvent:
    case MessageType::kUnsubscribeResponse: {
      // A response or event frame from a client is a protocol violation.
      QueryResponse response;
      response.status =
          Status::InvalidArgument("response frames are server-to-client");
      std::lock_guard<std::mutex> lock(mu_);
      SendLocked(conn, EncodeQueryResponse(response));
      conn->close_after_flush = true;
      return;
    }
  }
}

std::string Server::EncodeFailure(const PendingQuery& pending,
                                  const Status& status) {
  switch (pending.verb) {
    case PendingQuery::Verb::kExplain: {
      ExplainResponse response;
      response.request_id = pending.request.request_id;
      response.status = status;
      return EncodeExplainResponse(response);
    }
    case PendingQuery::Verb::kSubscribe: {
      SubscribeResponse response;
      response.request_id = pending.subscribe.request_id;
      response.status = status;
      return EncodeSubscribeResponse(response);
    }
    case PendingQuery::Verb::kFeed: {
      FeedResponse response;
      response.request_id = pending.feed.request_id;
      response.status = status;
      return EncodeFeedResponse(response);
    }
    case PendingQuery::Verb::kUnsubscribe: {
      UnsubscribeResponse response;
      response.request_id = pending.unsubscribe.request_id;
      response.status = status;
      return EncodeUnsubscribeResponse(response);
    }
    case PendingQuery::Verb::kQuery:
      break;
  }
  QueryResponse response;
  response.request_id = pending.request.request_id;
  response.status = status;
  return EncodeQueryResponse(response);
}

void Server::AdmitLocked(const ConnectionPtr& conn, PendingQuery pending) {
  auto reject = [&](std::string why) {
    queries_rejected_->Increment();
    SendLocked(conn,
               EncodeFailure(pending, Status::ResourceExhausted(std::move(why))));
  };
  if (draining_) {
    reject("server draining, not accepting new queries");
    return;
  }
  if (static_cast<int>(queue_.size()) >= options_.max_queue) {
    reject("admission queue full (" + std::to_string(options_.max_in_flight) +
           " in flight + " + std::to_string(options_.max_queue) +
           " queued); retry later");
    return;
  }
  queries_accepted_->Increment();
  switch (pending.verb) {
    case PendingQuery::Verb::kExplain:
      explain_requests_->Increment();
      break;
    case PendingQuery::Verb::kSubscribe:
      subscribe_requests_->Increment();
      break;
    case PendingQuery::Verb::kFeed:
      feed_requests_->Increment();
      break;
    case PendingQuery::Verb::kUnsubscribe:
      unsubscribe_requests_->Increment();
      break;
    case PendingQuery::Verb::kQuery:
      break;
  }
  pending.internal_id = next_query_id_++;
  pending.connection_id = conn->id;
  pending.admitted_at = Clock::now();
  if (pending.request.timeout_ms > 0) {
    pending.has_deadline = true;
    pending.deadline = pending.admitted_at +
                       std::chrono::milliseconds(pending.request.timeout_ms);
  }
  if (pending.verb == PendingQuery::Verb::kQuery ||
      pending.verb == PendingQuery::Verb::kExplain) {
    // Pin the catalog at request entry: everything this query observes —
    // binding, USING resolution, execution — is the catalog as of this
    // moment, no matter how long it waits in the queue or what writers do
    // meanwhile. (Streaming verbs don't pin here: a feed pins its own
    // snapshot at creation and keeps it for the feed's whole life.)
    pending.snapshot = engine_->Pin();
  }
  conn->inflight.emplace(pending.internal_id, pending.cancel);
  queue_.push_back(std::move(pending));
  work_cv_.notify_one();
}

void Server::SendLocked(const ConnectionPtr& conn, std::string frame) {
  if (conn->fd < 0) return;
  conn->outbox.push_back(std::move(frame));
  WakeIo();
}

void Server::FlushConnection(const ConnectionPtr& conn) {
  bool should_close = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!conn->outbox.empty()) {
      const std::string& front = conn->outbox.front();
      const ssize_t n =
          ::send(conn->fd, front.data() + conn->write_offset,
                 front.size() - conn->write_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->write_offset += static_cast<size_t>(n);
        if (conn->write_offset == front.size()) {
          conn->outbox.pop_front();
          conn->write_offset = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;  // interrupted: retry the send
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      should_close = true;
      break;
    }
    // The socket caught up: resume event forwarding for any subscription
    // that was paused by the outbox cap (the bounded queues buffered — or
    // gap-marked — meanwhile).
    if (!should_close && !conn->subscriptions.empty() &&
        conn->outbox.size() < options_.max_outbox_frames) {
      for (const uint64_t subscription_id : conn->subscriptions) {
        DrainSubscriptionLocked(conn, subscription_id);
      }
    }
    if (!should_close && conn->outbox.empty() && conn->close_after_flush) {
      should_close = true;
    }
  }
  if (should_close) CloseConnection(conn);
}

void Server::CloseConnection(const ConnectionPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A vanished client abandons its queries: fire their cancellation so
    // in-flight work unwinds instead of computing a result nobody reads.
    for (auto& [id, source] : conn->inflight) source.Cancel();
    conn->inflight.clear();
    // Likewise its standing queries: Unsubscribe is cheap (cancel + detach
    // flag; the dispatch loop prunes lazily), so it is safe from the IO
    // thread — this is cancellation-on-disconnect for feeds.
    for (const uint64_t subscription_id : conn->subscriptions) {
      (void)dispatcher_->Unsubscribe(subscription_id);
      sub_conn_.erase(subscription_id);
    }
    conn->subscriptions.clear();
    connections_.erase(conn->id);
  }
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

// ---------------------------------------------------------------------------
// Workers.

void Server::WorkerLoop() {
  for (;;) {
    PendingQuery pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this]() { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_workers_ with a drained queue
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    const Clock::time_point exec_begin = Clock::now();
    const double queue_ms = ElapsedMs(pending.admitted_at, exec_begin);

    // Per-query trace: recorded only from this worker (the engine detaches
    // it before any parallel fan-out), folded into the phase histograms
    // below once the query finishes.
    observability::QueryTrace trace;
    ExecutionContext context;
    if (pending.has_deadline) context.set_deadline(pending.deadline);
    context.set_cancellation(pending.cancel.token());
    context.set_trace(&trace);
    query::StatementOptions statement_options;
    statement_options.offline.runtime.num_threads = options_.threads_per_query;

    Status outcome;
    std::string frame;
    switch (pending.verb) {
      case PendingQuery::Verb::kExplain: {
        query::ExplainOptions explain_options;
        explain_options.analyze = pending.explain_analyze;
        explain_options.statement = statement_options;
        const Result<std::string> rendered = query::ExplainStatementOn(
            pending.snapshot, pending.request.statement, explain_options,
            context);
        ExplainResponse response;
        response.request_id = pending.request.request_id;
        response.status = rendered.status();
        if (rendered.ok()) response.text = *rendered;
        outcome = rendered.status();
        frame = EncodeExplainResponse(response);
        const double exec_ms = ElapsedMs(exec_begin, Clock::now());
        query_latency_->Record((queue_ms + exec_ms) * 1000.0);
        break;
      }
      case PendingQuery::Verb::kSubscribe:
        frame = ExecuteSubscribe(pending, &outcome);
        break;
      case PendingQuery::Verb::kFeed:
        frame = ExecuteFeed(pending, &outcome);
        break;
      case PendingQuery::Verb::kUnsubscribe:
        frame = ExecuteUnsubscribe(pending, &outcome);
        break;
      case PendingQuery::Verb::kQuery: {
        const Result<query::StatementResult> result =
            query::ExecuteStatementOn(pending.snapshot,
                                      pending.request.statement, context,
                                      statement_options);

        QueryResponse response;
        response.request_id = pending.request.request_id;
        response.status = result.status();
        if (result.ok()) FillResponse(*result, &response);
        const double exec_ms = ElapsedMs(exec_begin, Clock::now());
        response.metrics.server_queue_ms = queue_ms;
        response.metrics.server_exec_ms = exec_ms;
        outcome = response.status;
        frame = EncodeQueryResponse(response);
        query_latency_->Record((queue_ms + exec_ms) * 1000.0);
        RecordQueryMetrics(response.metrics, trace);
        break;
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      switch (outcome.code()) {
        case StatusCode::kOk:
          queries_ok_->Increment();
          break;
        case StatusCode::kCancelled:
          queries_cancelled_->Increment();
          break;
        case StatusCode::kDeadlineExceeded:
          queries_deadline_exceeded_->Increment();
          break;
        default:
          queries_failed_->Increment();
          break;
      }
      auto it = connections_.find(pending.connection_id);
      if (it != connections_.end()) {
        it->second->inflight.erase(pending.internal_id);
        SendLocked(it->second, std::move(frame));
      }
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Streaming verbs (docs/streaming.md).

namespace {

std::string EncodeStreamEvent(uint64_t subscription_id,
                              stream::StreamEvent event) {
  EventFrame frame;
  frame.subscription_id = subscription_id;
  frame.kind = static_cast<uint8_t>(event.kind);
  frame.begin = event.sequence.begin;
  frame.end = event.sequence.end;
  frame.dropped = event.dropped;
  frame.status = std::move(event.status);
  return EncodeEvent(frame);
}

}  // namespace

std::string Server::ExecuteSubscribe(const PendingQuery& pending,
                                     Status* outcome) {
  const SubscribeRequest& request = pending.subscribe;
  SubscribeResponse response;
  response.request_id = request.request_id;
  if (request.mode > 1) {
    response.status = Status::InvalidArgument(
        "unknown online mode " + std::to_string(request.mode) +
        " (0 = SVAQ, 1 = SVAQD)");
    *outcome = response.status;
    return EncodeSubscribeResponse(response);
  }
  stream::SubscribeOptions sub_options;
  sub_options.mode = request.mode == 0 ? core::OnlineEngine::Mode::kSvaq
                                       : core::OnlineEngine::Mode::kSvaqd;
  sub_options.queue_capacity = request.queue_capacity;
  sub_options.timeout_ms = request.timeout_ms;
  const Result<stream::SubscriptionPtr> sub =
      dispatcher_->Subscribe(request.feed, request.statement, sub_options);
  response.status = sub.status();
  *outcome = sub.status();
  if (sub.ok()) {
    response.subscription_id = (*sub)->id();
    response.feed = (*sub)->feed();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.find(pending.connection_id);
    if (it == connections_.end()) {
      // The client vanished between admission and execution: nobody will
      // ever poll this subscription, so tear it down right away.
      (void)dispatcher_->Unsubscribe((*sub)->id());
      response.status = Status::Cancelled("client disconnected");
      *outcome = response.status;
    } else {
      it->second->subscriptions.insert((*sub)->id());
      sub_conn_[(*sub)->id()] = pending.connection_id;
    }
  }
  return EncodeSubscribeResponse(response);
}

std::string Server::ExecuteFeed(const PendingQuery& pending, Status* outcome) {
  const FeedRequest& request = pending.feed;
  FeedResponse response;
  response.request_id = request.request_id;
  // Runs with no server lock held: the dispatcher's event callback fires
  // synchronously from inside FeedClips and takes mu_ to forward events.
  const Result<stream::FeedProgress> progress =
      dispatcher_->FeedClips(request.feed, request.clip_count);
  response.status = progress.status();
  *outcome = progress.status();
  if (progress.ok()) {
    response.clips_dispatched = progress->clips_dispatched;
    response.next_clip = progress->next_clip;
    response.feed_closed = progress->closed;
  }
  return EncodeFeedResponse(response);
}

std::string Server::ExecuteUnsubscribe(const PendingQuery& pending,
                                       Status* outcome) {
  const UnsubscribeRequest& request = pending.unsubscribe;
  UnsubscribeResponse response;
  response.request_id = request.request_id;
  Status status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sub_conn_.find(request.subscription_id);
    if (it == sub_conn_.end() || it->second != pending.connection_id) {
      // Covers both unknown ids and another connection's subscription — a
      // client can only tear down what it registered.
      status = Status::NotFound("no subscription " +
                                std::to_string(request.subscription_id) +
                                " on this connection");
    }
  }
  if (status.ok()) {
    // Hold the subscription before the dispatcher forgets it so the final
    // drain below can still reach its queue.
    const stream::SubscriptionPtr sub =
        dispatcher_->Find(request.subscription_id);
    status = dispatcher_->Unsubscribe(request.subscription_id);
    std::lock_guard<std::mutex> lock(mu_);
    auto conn_it = connections_.find(pending.connection_id);
    if (conn_it != connections_.end()) {
      if (sub != nullptr) {
        // Everything the subscription produced is delivered ahead of the
        // acknowledgement (no outbox cap: this flush is final and bounded
        // by the queue capacity).
        auto events = sub->Poll();
        for (stream::StreamEvent& event : events) {
          SendLocked(conn_it->second,
                     EncodeStreamEvent(request.subscription_id,
                                       std::move(event)));
        }
      }
      conn_it->second->subscriptions.erase(request.subscription_id);
    }
    sub_conn_.erase(request.subscription_id);
  }
  response.status = status;
  *outcome = status;
  return EncodeUnsubscribeResponse(response);
}

void Server::OnStreamEvent(uint64_t subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sub_conn_.find(subscription_id);
  if (it == sub_conn_.end()) return;
  auto conn_it = connections_.find(it->second);
  if (conn_it == connections_.end()) return;
  DrainSubscriptionLocked(conn_it->second, subscription_id);
}

void Server::DrainSubscriptionLocked(const ConnectionPtr& conn,
                                     uint64_t subscription_id) {
  if (conn->fd < 0) return;
  if (conn->outbox.size() >= options_.max_outbox_frames) return;
  const stream::SubscriptionPtr sub = dispatcher_->Find(subscription_id);
  if (sub == nullptr) return;
  auto events = sub->Poll();
  for (stream::StreamEvent& event : events) {
    SendLocked(conn, EncodeStreamEvent(subscription_id, std::move(event)));
  }
}

void Server::BridgeStreamStatsLocked() const {
  if (dispatcher_ == nullptr) return;
  const stream::DispatcherStats now = dispatcher_->Stats();
  const stream::DispatcherStats& last = last_stream_;
  stream_feeds_->Increment(now.feeds_created - last.feeds_created);
  stream_subscriptions_->Increment(now.subscriptions_opened -
                                   last.subscriptions_opened);
  stream_clips_dispatched_->Increment(now.clips_dispatched -
                                      last.clips_dispatched);
  stream_events_pushed_->Increment(now.events_pushed - last.events_pushed);
  stream_events_dropped_->Increment(now.events_dropped - last.events_dropped);
  stream_model_units_run_->Increment(now.model_units_run -
                                     last.model_units_run);
  stream_model_units_charged_->Increment(now.model_units_charged -
                                         last.model_units_charged);
  stream_model_ms_run_->Add(now.model_ms_run - last.model_ms_run);
  stream_model_ms_charged_->Add(now.model_ms_charged - last.model_ms_charged);
  stream_feeds_open_gauge_->Set(static_cast<double>(now.feeds_open));
  stream_subscriptions_active_gauge_->Set(
      static_cast<double>(now.subscriptions_active));
  last_stream_ = now;
}

// ---------------------------------------------------------------------------
// Lifecycle + stats.

void Server::Shutdown(std::chrono::milliseconds drain_timeout) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || shut_down_) return;
    draining_ = true;
  }
  WakeIo();  // the IO loop closes the listen socket on its next pass
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Give admitted queries the drain budget to finish on their own.
    drain_cv_.wait_for(lock, drain_timeout, [this]() {
      return queue_.empty() && in_flight_ == 0;
    });
    // Budget exhausted: cancel the backlog with an explicit response ...
    while (!queue_.empty()) {
      PendingQuery pending = std::move(queue_.front());
      queue_.pop_front();
      queries_cancelled_->Increment();
      auto it = connections_.find(pending.connection_id);
      if (it != connections_.end()) {
        it->second->inflight.erase(pending.internal_id);
        SendLocked(it->second,
                   EncodeFailure(pending,
                                 Status::Cancelled("server shutting down")));
      }
    }
    // ... and fire cancellation on everything still executing; the engine
    // polls its context cooperatively, so workers unwind promptly.
    for (const auto& [id, conn] : connections_) {
      for (auto& [qid, source] : conn->inflight) source.Cancel();
    }
    drain_cv_.wait(lock, [this]() { return in_flight_ == 0; });
    stop_workers_ = true;
    stop_io_ = true;
    io_flush_deadline_ = Clock::now() + std::chrono::seconds(1);
    shut_down_ = true;
  }
  work_cv_.notify_all();
  WakeIo();
  for (std::thread& worker : workers_) worker.join();
  if (io_thread_.joinable()) io_thread_.join();
  // The IO thread has exited: sockets are single-owner again.
  for (const auto& [id, conn] : connections_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

void Server::RefreshGaugesLocked() const {
  connections_open_gauge_->Set(static_cast<double>(connections_.size()));
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  in_flight_gauge_->Set(static_cast<double>(in_flight_));
  BridgeCacheStatsLocked();
  BridgePlannerStatsLocked();
  BridgeStreamStatsLocked();
}

void Server::BridgeCacheStatsLocked() const {
  if (engine_ == nullptr) return;
  const svq::cache::CacheStats::Snapshot now =
      engine_->cache_stats()->Read();
  const svq::cache::CacheStats::Snapshot& last = last_cache_;
  cache_hits_->Increment(now.hits() - last.hits());
  cache_misses_->Increment(now.misses() - last.misses());
  cache_evictions_->Increment(now.evictions() - last.evictions());
  cache_candidate_hits_->Increment(now.candidate_hits - last.candidate_hits);
  cache_candidate_misses_->Increment(now.candidate_misses -
                                     last.candidate_misses);
  cache_result_hits_->Increment(now.result_hits - last.result_hits);
  cache_result_misses_->Increment(now.result_misses - last.result_misses);
  cache_kcrit_hits_->Increment(now.kcrit_hits - last.kcrit_hits);
  cache_kcrit_computes_->Increment(now.kcrit_computes - last.kcrit_computes);
  cache_single_flight_waits_->Increment(now.single_flight_waits -
                                        last.single_flight_waits);
  cache_bytes_gauge_->Set(static_cast<double>(now.bytes));
  last_cache_ = now;
}

void Server::BridgePlannerStatsLocked() const {
  const plan::PlannerCounters::Snapshot now =
      plan::GlobalPlannerCounters().Read();
  const plan::PlannerCounters::Snapshot& last = last_plan_;
  plan_plans_->Increment(now.plans_total - last.plans_total);
  plan_cache_hits_->Increment(now.cache_hits - last.cache_hits);
  plan_auto_rvaq_->Increment(now.auto_rvaq - last.auto_rvaq);
  plan_auto_fagin_->Increment(now.auto_fagin - last.auto_fagin);
  plan_auto_pq_traverse_->Increment(now.auto_pq_traverse -
                                    last.auto_pq_traverse);
  plan_overrides_->Increment(now.overrides - last.overrides);
  plan_estimate_samples_->Increment(now.estimate_samples -
                                    last.estimate_samples);
  plan_estimate_error_pct_sum_->Increment(now.estimate_error_pct_sum -
                                          last.estimate_error_pct_sum);
  last_plan_ = now;
}

void Server::RecordQueryMetrics(const WireQueryMetrics& metrics,
                                const observability::QueryTrace& trace) {
  storage_sorted_accesses_->Increment(metrics.sorted_accesses);
  storage_random_accesses_->Increment(metrics.random_accesses);
  storage_sequential_reads_->Increment(metrics.sequential_reads);
  storage_virtual_disk_ms_->Add(metrics.virtual_ms);
  inference_model_ms_->Add(metrics.model_ms);
  online_clips_processed_->Increment(metrics.clips_processed);
  runtime_tasks_executed_->Increment(metrics.tasks_executed);
  runtime_fanout_ms_->Add(metrics.fanout_ms);
  engine_algorithm_ms_->Add(metrics.algorithm_ms);
  // Phase spans -> per-phase latency histograms. A phase that never ran
  // (parse error aborts before bind) records nothing.
  const struct {
    const char* span;
    observability::Histogram* histogram;
  } phases[] = {{"parse", phase_parse_},
                {"bind", phase_bind_},
                {"plan", phase_plan_},
                {"execute", phase_execute_}};
  for (const auto& phase : phases) {
    if (trace.CountOf(phase.span) > 0) {
      phase.histogram->Record(trace.TotalMs(phase.span) * 1000.0);
    }
  }
}

ServerStatsWire Server::StatsLocked() const {
  RefreshGaugesLocked();
  ServerStatsWire stats;
  stats.queries_accepted = static_cast<int64_t>(queries_accepted_->value());
  stats.queries_rejected = static_cast<int64_t>(queries_rejected_->value());
  stats.queries_ok = static_cast<int64_t>(queries_ok_->value());
  stats.queries_failed = static_cast<int64_t>(queries_failed_->value());
  stats.queries_cancelled = static_cast<int64_t>(queries_cancelled_->value());
  stats.queries_deadline_exceeded =
      static_cast<int64_t>(queries_deadline_exceeded_->value());
  stats.stats_requests = static_cast<int64_t>(stats_requests_->value());
  stats.connections_opened =
      static_cast<int64_t>(connections_opened_->value());
  stats.connections_open = static_cast<int64_t>(connections_.size());
  stats.queue_depth = static_cast<int64_t>(queue_.size());
  stats.in_flight = in_flight_;
  stats.query_latency = ToWireHistogram(query_latency_->Snapshot());
  stats.stats_latency = ToWireHistogram(stats_latency_->Snapshot());
  stats.registry = registry_.Snapshot().Flatten();
  return stats;
}

ServerStatsWire Server::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsLocked();
}

observability::MetricsSnapshot Server::Metrics() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshGaugesLocked();
  }
  return registry_.Snapshot();
}

void Server::DumpPrometheus(std::ostream& out) const {
  Metrics().DumpPrometheus(out);
}

}  // namespace svq::server
