#ifndef SVQ_SERVER_HISTOGRAM_H_
#define SVQ_SERVER_HISTOGRAM_H_

#include <atomic>
#include <cmath>
#include <cstdint>

#include "svq/server/wire.h"

namespace svq::server {

/// Thread-safe latency histogram with the wire's fixed power-of-two bucket
/// layout (bucket i counts observations in [2^i, 2^(i+1)) µs; the last
/// bucket absorbs everything larger). Record() is a single relaxed atomic
/// increment, so worker threads on the hot response path never serialize on
/// a stats lock; Snapshot() is a consistent-enough read for monitoring
/// (individual buckets are exact, the total may trail by in-flight
/// increments).
class LatencyHistogram {
 public:
  void Record(double micros) {
    int bucket = 0;
    if (micros >= 1.0) {
      bucket = static_cast<int>(std::log2(micros));
      if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  WireHistogram Snapshot() const {
    WireHistogram snapshot;
    snapshot.count = count_.load(std::memory_order_relaxed);
    for (int i = 0; i < kLatencyBuckets; ++i) {
      snapshot.buckets[static_cast<size_t>(i)] =
          buckets_[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> buckets_[kLatencyBuckets] = {};
};

}  // namespace svq::server

#endif  // SVQ_SERVER_HISTOGRAM_H_
