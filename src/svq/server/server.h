#ifndef SVQ_SERVER_SERVER_H_
#define SVQ_SERVER_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "svq/common/execution_context.h"
#include "svq/common/status.h"
#include "svq/core/engine.h"
#include "svq/observability/metrics.h"
#include "svq/observability/trace.h"
#include "svq/plan/planner.h"
#include "svq/server/wire.h"
#include "svq/stream/dispatcher.h"

namespace svq::server {

/// Tunables of one svqd instance.
struct ServerOptions {
  /// Address to bind; loopback by default (svqd is not an internet-facing
  /// daemon — put a real proxy in front of it).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 64;
  /// Admission control: queries executing concurrently (also the worker
  /// thread count) ...
  int max_in_flight = 4;
  /// ... plus at most this many queued behind them; anything beyond is
  /// rejected with kResourceExhausted instead of queueing unboundedly.
  int max_queue = 16;
  /// Per-query engine fan-out (OfflineOptions::runtime.num_threads). The
  /// default keeps each query sequential and lets concurrency come from
  /// many requests; raise it on big machines serving few fat queries.
  int threads_per_query = 1;
  /// Frames above this are a protocol error and drop the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Standing-query (v4 SUBSCRIBE) event queue capacity per subscription —
  /// the lag/drop bound: a subscriber this far behind starts receiving gap
  /// markers instead of stalling the feed (docs/streaming.md).
  size_t stream_event_queue_capacity = 256;
  /// Standing queries per feed beyond this are rejected with
  /// kResourceExhausted.
  int max_subscriptions_per_feed = 64;
  /// EVENT frames already encoded on a connection's outbox beyond this
  /// pause event forwarding for that connection until the socket drains
  /// (the subscription queue keeps absorbing, eventually dropping — slow
  /// consumers degrade themselves, never the server).
  size_t max_outbox_frames = 256;
};

/// A poll-based TCP server exposing a VideoQueryEngine over the svqd wire
/// protocol (docs/server.md).
///
/// Threading model: one IO thread owns every socket (accept, frame
/// assembly, response writes) and `max_in_flight` worker threads execute
/// admitted queries. A request is pinned to a catalog snapshot at entry —
/// on the IO thread, before it ever waits in the admission queue — so the
/// results a client sees correspond to the catalog as of request arrival,
/// exactly like an in-process ExecuteTopKOn caller. The client's
/// timeout_ms becomes the query's ExecutionContext deadline, so an expired
/// request unwinds server-side (cooperatively, within one clip / iterator
/// step) instead of burning a worker; a client that disconnects mid-query
/// fires the query's CancellationSource the same way.
///
/// Shutdown(drain) implements graceful drain: stop accepting connections,
/// reject new queries with kResourceExhausted, let in-flight queries finish
/// within the drain budget, cancel whatever remains, flush responses, then
/// exit. The svqd binary wires SIGINT/SIGTERM to exactly this.
class Server {
 public:
  /// `engine` is borrowed and must outlive the server.
  Server(core::VideoQueryEngine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the IO + worker threads. Errors: IOError
  /// (socket/bind failures), FailedPrecondition (already started).
  Status Start();

  /// The bound port (valid after Start; resolves port 0 requests).
  uint16_t port() const { return bound_port_; }

  /// Graceful drain, then stop. Safe to call more than once.
  void Shutdown(std::chrono::milliseconds drain_timeout =
                    std::chrono::milliseconds(5000));

  /// Cumulative counters + gauges + per-verb latency histograms — the same
  /// payload the STATS verb returns (including the flattened registry).
  ServerStatsWire Stats() const;

  /// Point-in-time snapshot of the server's metrics registry: admission /
  /// outcome counters, connection and queue gauges, per-verb latency and
  /// per-phase (parse/bind/plan/execute) histograms, plus the engine-side
  /// aggregates (storage accesses, inference time) accumulated from every
  /// finished query.
  observability::MetricsSnapshot Metrics() const;

  /// Writes Metrics() in Prometheus text exposition format.
  void DumpPrometheus(std::ostream& out) const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameAssembler assembler;
    /// Encoded response frames awaiting the socket, oldest first; the
    /// front may be partially written (write_offset into it).
    std::deque<std::string> outbox;
    size_t write_offset = 0;
    bool close_after_flush = false;
    /// Cancellation handles of this connection's admitted-but-unfinished
    /// queries, keyed by internal query id; fired on disconnect.
    std::map<uint64_t, CancellationSource> inflight;
    /// Standing-query subscriptions owned by this connection; disconnect
    /// unsubscribes them all (cancellation-on-disconnect for feeds).
    std::set<uint64_t> subscriptions;

    explicit Connection(size_t max_frame_bytes)
        : assembler(max_frame_bytes) {}
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  struct PendingQuery {
    /// Which wire verb this admitted request carries. EXPLAIN shares the
    /// admission queue with QUERY because under ANALYZE the statement
    /// genuinely executes; the streaming verbs ride the same queue so a
    /// FEED burst competes for workers like any query instead of starving
    /// them.
    enum class Verb : uint8_t {
      kQuery,
      kExplain,
      kSubscribe,
      kFeed,
      kUnsubscribe,
    };
    Verb verb = Verb::kQuery;
    uint64_t internal_id = 0;
    uint64_t connection_id = 0;
    QueryRequest request;
    core::SnapshotPtr snapshot;
    bool has_deadline = false;
    ExecutionContext::Clock::time_point deadline{};
    CancellationSource cancel;
    ExecutionContext::Clock::time_point admitted_at{};
    /// EXPLAIN ANALYZE: also execute the statement.
    bool explain_analyze = false;
    /// Decoded streaming-verb requests (valid per `verb`). The dispatcher
    /// pins its own snapshot at feed creation, so these carry no
    /// `snapshot`.
    SubscribeRequest subscribe;
    FeedRequest feed;
    UnsubscribeRequest unsubscribe;
  };

  void IoLoop();
  void WorkerLoop();

  /// IO-thread helpers. All take mu_ themselves where shared state is
  /// touched; socket reads/writes happen outside the lock.
  void AcceptPending();
  void ReadFromConnection(const ConnectionPtr& conn);
  void FlushConnection(const ConnectionPtr& conn);
  void CloseConnection(const ConnectionPtr& conn);
  void HandlePayload(const ConnectionPtr& conn, const std::string& payload);
  /// Admission control for one decoded request of any verb (mu_ held by
  /// caller). `pending.verb` plus the matching body must be filled in;
  /// rejections answer with the verb's own response type.
  void AdmitLocked(const ConnectionPtr& conn, PendingQuery pending);
  /// Encodes a rejection/cancellation response for `pending`'s verb.
  static std::string EncodeFailure(const PendingQuery& pending,
                                   const Status& status);

  /// Worker-side execution of the admitted streaming verbs; each returns
  /// the encoded response frame to send.
  std::string ExecuteSubscribe(const PendingQuery& pending, Status* outcome);
  std::string ExecuteFeed(const PendingQuery& pending, Status* outcome);
  std::string ExecuteUnsubscribe(const PendingQuery& pending,
                                 Status* outcome);

  /// Dispatcher event callback: forwards a subscription's queued events to
  /// its connection as EVENT frames. Invoked with no dispatcher/feed locks
  /// held, from whichever thread dispatched the clip.
  void OnStreamEvent(uint64_t subscription_id);
  /// Drains a subscription's queue into its connection's outbox as EVENT
  /// frames (mu_ held by caller). Skips when the outbox is past
  /// max_outbox_frames — FlushConnection re-drains once the socket
  /// catches up, and the bounded queue ages out the backlog meanwhile.
  void DrainSubscriptionLocked(const ConnectionPtr& conn,
                               uint64_t subscription_id);

  /// Queues an encoded frame on `conn` (mu_ held by caller) — the IO loop
  /// flushes it on the next POLLOUT.
  void SendLocked(const ConnectionPtr& conn, std::string frame);
  void WakeIo();

  ServerStatsWire StatsLocked() const;

  core::VideoQueryEngine* const engine_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t bound_port_ = 0;
  bool started_ = false;
  bool shut_down_ = false;

  /// Serializes Start/Shutdown against each other (mu_ cannot be held
  /// across thread joins).
  std::mutex lifecycle_mu_;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue_ or stop_workers_
  std::condition_variable drain_cv_;  // Shutdown: queue empty + idle
  std::map<uint64_t, ConnectionPtr> connections_;
  std::deque<PendingQuery> queue_;
  uint64_t next_connection_id_ = 1;
  uint64_t next_query_id_ = 1;
  int in_flight_ = 0;
  bool draining_ = false;
  bool stop_workers_ = false;
  bool stop_io_ = false;
  ExecutionContext::Clock::time_point io_flush_deadline_{};

  /// Refreshes the instantaneous gauges from queue/connection state
  /// (mu_ held by caller).
  void RefreshGaugesLocked() const;

  /// Folds one finished query's engine-side accounting and trace into the
  /// registry (lock-free: counters and histograms are relaxed atomics).
  void RecordQueryMetrics(const WireQueryMetrics& metrics,
                          const observability::QueryTrace& trace);

  /// All server metrics live here; recording is relaxed-atomic, so the
  /// worker hot path never serializes on a stats lock. The named pointers
  /// below are registered once in the constructor and stable for the
  /// server's lifetime.
  observability::MetricsRegistry registry_;
  observability::Counter* queries_accepted_;
  observability::Counter* queries_rejected_;
  observability::Counter* queries_ok_;
  observability::Counter* queries_failed_;
  observability::Counter* queries_cancelled_;
  observability::Counter* queries_deadline_exceeded_;
  observability::Counter* stats_requests_;
  observability::Counter* explain_requests_;
  observability::Counter* connections_opened_;
  observability::Gauge* connections_open_gauge_;
  observability::Gauge* queue_depth_gauge_;
  observability::Gauge* in_flight_gauge_;
  observability::Histogram* query_latency_;
  observability::Histogram* stats_latency_;
  observability::Histogram* phase_parse_;
  observability::Histogram* phase_bind_;
  observability::Histogram* phase_plan_;
  observability::Histogram* phase_execute_;
  observability::Counter* storage_sorted_accesses_;
  observability::Counter* storage_random_accesses_;
  observability::Counter* storage_sequential_reads_;
  observability::Counter* storage_virtual_disk_ms_;
  observability::Counter* inference_model_ms_;
  observability::Counter* online_clips_processed_;
  observability::Counter* runtime_tasks_executed_;
  observability::Counter* runtime_fanout_ms_;
  observability::Counter* engine_algorithm_ms_;

  /// Folds the engine's cumulative cache counters into the registry as
  /// deltas since the previous bridge (mu_ held by caller — it guards
  /// last_cache_). Registry counters only go up, so the bridge tracks the
  /// last folded snapshot instead of Set()ing absolutes.
  void BridgeCacheStatsLocked() const;
  mutable svq::cache::CacheStats::Snapshot last_cache_;
  observability::Counter* cache_hits_;
  observability::Counter* cache_misses_;
  observability::Counter* cache_evictions_;
  observability::Counter* cache_candidate_hits_;
  observability::Counter* cache_candidate_misses_;
  observability::Counter* cache_result_hits_;
  observability::Counter* cache_result_misses_;
  observability::Counter* cache_kcrit_hits_;
  observability::Counter* cache_kcrit_computes_;
  observability::Counter* cache_single_flight_waits_;
  observability::Gauge* cache_bytes_gauge_;

  /// Folds the process-wide planner counters into the registry as deltas
  /// since the previous bridge, same discipline as the cache bridge above
  /// (mu_ held by caller — it guards last_plan_).
  void BridgePlannerStatsLocked() const;
  mutable plan::PlannerCounters::Snapshot last_plan_;
  observability::Counter* plan_plans_;
  observability::Counter* plan_cache_hits_;
  observability::Counter* plan_auto_rvaq_;
  observability::Counter* plan_auto_fagin_;
  observability::Counter* plan_auto_pq_traverse_;
  observability::Counter* plan_overrides_;
  observability::Counter* plan_estimate_samples_;
  observability::Counter* plan_estimate_error_pct_sum_;

  /// Folds the stream dispatcher's cumulative counters into the registry
  /// as deltas since the previous bridge, same discipline as the cache
  /// bridge (mu_ held by caller — it guards last_stream_).
  void BridgeStreamStatsLocked() const;
  mutable stream::DispatcherStats last_stream_;
  observability::Counter* subscribe_requests_;
  observability::Counter* feed_requests_;
  observability::Counter* unsubscribe_requests_;
  observability::Counter* stream_feeds_;
  observability::Gauge* stream_feeds_open_gauge_;
  observability::Counter* stream_subscriptions_;
  observability::Gauge* stream_subscriptions_active_gauge_;
  observability::Counter* stream_clips_dispatched_;
  observability::Counter* stream_events_pushed_;
  observability::Counter* stream_events_dropped_;
  observability::Counter* stream_model_units_run_;
  observability::Counter* stream_model_units_charged_;
  observability::Counter* stream_model_ms_run_;
  observability::Counter* stream_model_ms_charged_;

  /// Subscription id -> owning connection id (guarded by mu_); the event
  /// callback routes through this, and disconnect tears down every entry
  /// of its connection.
  std::map<uint64_t, uint64_t> sub_conn_;

  /// The standing-query multiplexer (docs/streaming.md). Declared last so
  /// it is destroyed first: its worker thread may still invoke
  /// OnStreamEvent, which must find the rest of the server alive.
  std::unique_ptr<stream::StreamDispatcher> dispatcher_;
};

}  // namespace svq::server

#endif  // SVQ_SERVER_SERVER_H_
