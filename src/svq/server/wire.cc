#include "svq/server/wire.h"

#include <bit>
#include <cmath>

namespace svq::server {

// ---------------------------------------------------------------------------
// Primitives.

void AppendU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void AppendI64(std::string* out, int64_t value) {
  AppendU64(out, static_cast<uint64_t>(value));
}

void AppendF64(std::string* out, double value) {
  AppendU64(out, std::bit_cast<uint64_t>(value));
}

void AppendString(std::string* out, std::string_view value) {
  AppendU32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

Status WireCursor::Need(size_t n) {
  if (pos_ + n > bytes_.size()) {
    return Status::Corruption("frame truncated: need " + std::to_string(n) +
                              " bytes, have " +
                              std::to_string(bytes_.size() - pos_));
  }
  return Status::OK();
}

Status WireCursor::ReadU8(uint8_t* value) {
  SVQ_RETURN_NOT_OK(Need(1));
  *value = static_cast<uint8_t>(bytes_[pos_++]);
  return Status::OK();
}

Status WireCursor::ReadU32(uint32_t* value) {
  SVQ_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *value = v;
  return Status::OK();
}

Status WireCursor::ReadU64(uint64_t* value) {
  SVQ_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *value = v;
  return Status::OK();
}

Status WireCursor::ReadI64(int64_t* value) {
  uint64_t raw = 0;
  SVQ_RETURN_NOT_OK(ReadU64(&raw));
  *value = static_cast<int64_t>(raw);
  return Status::OK();
}

Status WireCursor::ReadF64(double* value) {
  uint64_t raw = 0;
  SVQ_RETURN_NOT_OK(ReadU64(&raw));
  *value = std::bit_cast<double>(raw);
  return Status::OK();
}

Status WireCursor::ReadString(std::string* value) {
  uint32_t length = 0;
  SVQ_RETURN_NOT_OK(ReadU32(&length));
  SVQ_RETURN_NOT_OK(Need(length));
  value->assign(bytes_.substr(pos_, length));
  pos_ += length;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Histogram.

double WireHistogram::BucketUpperMicros(int i) {
  return std::ldexp(1.0, i + 1);
}

double WireHistogram::PercentileMicros(double p) const {
  if (count <= 0) return 0.0;
  const double target = p * static_cast<double>(count);
  int64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target) return BucketUpperMicros(i);
  }
  return BucketUpperMicros(kLatencyBuckets - 1);
}

namespace {

void AppendHistogram(std::string* out, const WireHistogram& histogram) {
  AppendI64(out, histogram.count);
  AppendU32(out, static_cast<uint32_t>(kLatencyBuckets));
  for (const int64_t bucket : histogram.buckets) AppendI64(out, bucket);
}

Status ReadHistogram(WireCursor* cursor, WireHistogram* histogram) {
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&histogram->count));
  uint32_t buckets = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&buckets));
  if (buckets != static_cast<uint32_t>(kLatencyBuckets)) {
    return Status::Corruption("histogram bucket count mismatch");
  }
  histogram->buckets.assign(kLatencyBuckets, 0);
  for (int64_t& bucket : histogram->buckets) {
    SVQ_RETURN_NOT_OK(cursor->ReadI64(&bucket));
  }
  return Status::OK();
}

Status ExpectEnd(const WireCursor& cursor) {
  if (!cursor.AtEnd()) {
    return Status::Corruption("trailing bytes after message body");
  }
  return Status::OK();
}

// Statuses use the svq/common encoding (u8 code + string message); the
// code byte is validated so a hostile frame cannot smuggle an
// out-of-range StatusCode into the process.
Status ReadStatus(WireCursor* cursor, Status* status) {
  uint8_t raw_code = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&raw_code));
  if (raw_code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code " +
                              std::to_string(raw_code));
  }
  std::string message;
  SVQ_RETURN_NOT_OK(cursor->ReadString(&message));
  *status = Status(static_cast<StatusCode>(raw_code), std::move(message));
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Frames.

std::string EncodeFrame(MessageType type, std::string_view body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + 2 + body.size());
  AppendU32(&frame, static_cast<uint32_t>(2 + body.size()));
  AppendU8(&frame, kWireVersion);
  AppendU8(&frame, static_cast<uint8_t>(type));
  frame.append(body);
  return frame;
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string body;
  AppendU64(&body, request.request_id);
  AppendU32(&body, request.timeout_ms);
  AppendString(&body, request.statement);
  return EncodeFrame(MessageType::kQueryRequest, body);
}

std::string EncodeStatsRequest() {
  return EncodeFrame(MessageType::kStatsRequest, "");
}

std::string EncodeQueryResponse(const QueryResponse& response) {
  std::string body;
  AppendU64(&body, response.request_id);
  EncodeStatus(response.status, &body);
  AppendU8(&body, response.ranked ? 1 : 0);
  AppendU32(&body, static_cast<uint32_t>(response.sequences.size()));
  for (const WireSequence& sequence : response.sequences) {
    AppendI64(&body, sequence.begin);
    AppendI64(&body, sequence.end);
    AppendF64(&body, sequence.lower_bound);
    AppendF64(&body, sequence.upper_bound);
  }
  const WireQueryMetrics& m = response.metrics;
  AppendI64(&body, m.sorted_accesses);
  AppendI64(&body, m.random_accesses);
  AppendI64(&body, m.sequential_reads);
  AppendF64(&body, m.virtual_ms);
  AppendF64(&body, m.algorithm_ms);
  AppendF64(&body, m.model_ms);
  AppendI64(&body, m.clips_processed);
  AppendI64(&body, m.threads_used);
  AppendI64(&body, m.tasks_executed);
  AppendF64(&body, m.fanout_ms);
  AppendF64(&body, m.server_queue_ms);
  AppendF64(&body, m.server_exec_ms);
  return EncodeFrame(MessageType::kQueryResponse, body);
}

std::string EncodeStatsResponse(const ServerStatsWire& stats) {
  std::string body;
  AppendI64(&body, stats.queries_accepted);
  AppendI64(&body, stats.queries_rejected);
  AppendI64(&body, stats.queries_ok);
  AppendI64(&body, stats.queries_failed);
  AppendI64(&body, stats.queries_cancelled);
  AppendI64(&body, stats.queries_deadline_exceeded);
  AppendI64(&body, stats.stats_requests);
  AppendI64(&body, stats.connections_opened);
  AppendI64(&body, stats.connections_open);
  AppendI64(&body, stats.queue_depth);
  AppendI64(&body, stats.in_flight);
  AppendHistogram(&body, stats.query_latency);
  AppendHistogram(&body, stats.stats_latency);
  AppendU32(&body, static_cast<uint32_t>(stats.registry.size()));
  for (const auto& [name, value] : stats.registry) {
    AppendString(&body, name);
    AppendF64(&body, value);
  }
  return EncodeFrame(MessageType::kStatsResponse, body);
}

std::string EncodeExplainRequest(const ExplainRequest& request) {
  std::string body;
  AppendU64(&body, request.request_id);
  AppendU8(&body, request.analyze ? 1 : 0);
  AppendU32(&body, request.timeout_ms);
  AppendString(&body, request.statement);
  return EncodeFrame(MessageType::kExplainRequest, body);
}

std::string EncodeExplainResponse(const ExplainResponse& response) {
  std::string body;
  AppendU64(&body, response.request_id);
  EncodeStatus(response.status, &body);
  AppendString(&body, response.text);
  return EncodeFrame(MessageType::kExplainResponse, body);
}

std::string EncodeSubscribeRequest(const SubscribeRequest& request) {
  std::string body;
  AppendU64(&body, request.request_id);
  AppendString(&body, request.feed);
  AppendString(&body, request.statement);
  AppendU8(&body, request.mode);
  AppendU32(&body, request.queue_capacity);
  AppendU32(&body, request.timeout_ms);
  return EncodeFrame(MessageType::kSubscribeRequest, body);
}

std::string EncodeSubscribeResponse(const SubscribeResponse& response) {
  std::string body;
  AppendU64(&body, response.request_id);
  EncodeStatus(response.status, &body);
  AppendU64(&body, response.subscription_id);
  AppendString(&body, response.feed);
  return EncodeFrame(MessageType::kSubscribeResponse, body);
}

std::string EncodeFeedRequest(const FeedRequest& request) {
  std::string body;
  AppendU64(&body, request.request_id);
  AppendString(&body, request.feed);
  AppendI64(&body, request.clip_count);
  return EncodeFrame(MessageType::kFeedRequest, body);
}

std::string EncodeFeedResponse(const FeedResponse& response) {
  std::string body;
  AppendU64(&body, response.request_id);
  EncodeStatus(response.status, &body);
  AppendI64(&body, response.clips_dispatched);
  AppendI64(&body, response.next_clip);
  AppendU8(&body, response.feed_closed ? 1 : 0);
  return EncodeFrame(MessageType::kFeedResponse, body);
}

std::string EncodeEvent(const EventFrame& event) {
  std::string body;
  AppendU64(&body, event.subscription_id);
  AppendU8(&body, event.kind);
  AppendI64(&body, event.begin);
  AppendI64(&body, event.end);
  AppendI64(&body, event.dropped);
  EncodeStatus(event.status, &body);
  return EncodeFrame(MessageType::kEvent, body);
}

std::string EncodeUnsubscribeRequest(const UnsubscribeRequest& request) {
  std::string body;
  AppendU64(&body, request.request_id);
  AppendU64(&body, request.subscription_id);
  return EncodeFrame(MessageType::kUnsubscribeRequest, body);
}

std::string EncodeUnsubscribeResponse(const UnsubscribeResponse& response) {
  std::string body;
  AppendU64(&body, response.request_id);
  EncodeStatus(response.status, &body);
  return EncodeFrame(MessageType::kUnsubscribeResponse, body);
}

Status DecodePayloadHeader(WireCursor* cursor, MessageType* type) {
  uint8_t version = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&version));
  if (version != kWireVersion) {
    // Name both versions so the peer can report the mismatch precisely
    // (svq_client parses this message for its version-mismatch exit code).
    return Status::Unimplemented(
        "unsupported wire version " + std::to_string(version) +
        " (this peer speaks v" + std::to_string(kWireVersion) + ")");
  }
  uint8_t raw_type = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&raw_type));
  if (raw_type < static_cast<uint8_t>(MessageType::kQueryRequest) ||
      raw_type > static_cast<uint8_t>(MessageType::kUnsubscribeResponse)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(raw_type));
  }
  *type = static_cast<MessageType>(raw_type);
  return Status::OK();
}

Status DecodeQueryRequest(WireCursor* cursor, QueryRequest* request) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&request->request_id));
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&request->timeout_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&request->statement));
  return ExpectEnd(*cursor);
}

Status DecodeQueryResponse(WireCursor* cursor, QueryResponse* response) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&response->request_id));
  // Statuses use the svq/common encoding; bridge through the cursor by
  // re-reading code + message with the same layout.
  uint8_t raw_code = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&raw_code));
  if (raw_code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code " +
                              std::to_string(raw_code));
  }
  std::string message;
  SVQ_RETURN_NOT_OK(cursor->ReadString(&message));
  response->status =
      Status(static_cast<StatusCode>(raw_code), std::move(message));
  uint8_t ranked = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&ranked));
  response->ranked = ranked != 0;
  uint32_t sequence_count = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&sequence_count));
  // 32 bytes per sequence: the count cannot exceed what the frame holds.
  if (static_cast<size_t>(sequence_count) * 32 > cursor->remaining()) {
    return Status::Corruption("sequence count overruns frame");
  }
  response->sequences.assign(sequence_count, WireSequence());
  for (WireSequence& sequence : response->sequences) {
    SVQ_RETURN_NOT_OK(cursor->ReadI64(&sequence.begin));
    SVQ_RETURN_NOT_OK(cursor->ReadI64(&sequence.end));
    SVQ_RETURN_NOT_OK(cursor->ReadF64(&sequence.lower_bound));
    SVQ_RETURN_NOT_OK(cursor->ReadF64(&sequence.upper_bound));
  }
  WireQueryMetrics& m = response->metrics;
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&m.sorted_accesses));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&m.random_accesses));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&m.sequential_reads));
  SVQ_RETURN_NOT_OK(cursor->ReadF64(&m.virtual_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadF64(&m.algorithm_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadF64(&m.model_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&m.clips_processed));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&m.threads_used));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&m.tasks_executed));
  SVQ_RETURN_NOT_OK(cursor->ReadF64(&m.fanout_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadF64(&m.server_queue_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadF64(&m.server_exec_ms));
  return ExpectEnd(*cursor);
}

Status DecodeStatsResponse(WireCursor* cursor, ServerStatsWire* stats) {
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queries_accepted));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queries_rejected));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queries_ok));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queries_failed));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queries_cancelled));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queries_deadline_exceeded));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->stats_requests));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->connections_opened));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->connections_open));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->queue_depth));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&stats->in_flight));
  SVQ_RETURN_NOT_OK(ReadHistogram(cursor, &stats->query_latency));
  SVQ_RETURN_NOT_OK(ReadHistogram(cursor, &stats->stats_latency));
  uint32_t registry_count = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&registry_count));
  // 12 bytes minimum per entry (u32 name length + f64 value): a hostile
  // count cannot force an allocation beyond what the frame holds.
  if (static_cast<size_t>(registry_count) * 12 > cursor->remaining()) {
    return Status::Corruption("registry entry count overruns frame");
  }
  stats->registry.clear();
  stats->registry.reserve(registry_count);
  for (uint32_t i = 0; i < registry_count; ++i) {
    std::string name;
    double value = 0.0;
    SVQ_RETURN_NOT_OK(cursor->ReadString(&name));
    SVQ_RETURN_NOT_OK(cursor->ReadF64(&value));
    stats->registry.emplace_back(std::move(name), value);
  }
  return ExpectEnd(*cursor);
}

Status DecodeExplainRequest(WireCursor* cursor, ExplainRequest* request) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&request->request_id));
  uint8_t analyze = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&analyze));
  request->analyze = analyze != 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&request->timeout_ms));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&request->statement));
  return ExpectEnd(*cursor);
}

Status DecodeExplainResponse(WireCursor* cursor, ExplainResponse* response) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&response->request_id));
  uint8_t raw_code = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&raw_code));
  if (raw_code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code " +
                              std::to_string(raw_code));
  }
  std::string message;
  SVQ_RETURN_NOT_OK(cursor->ReadString(&message));
  response->status =
      Status(static_cast<StatusCode>(raw_code), std::move(message));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&response->text));
  return ExpectEnd(*cursor);
}

Status DecodeSubscribeRequest(WireCursor* cursor, SubscribeRequest* request) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&request->request_id));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&request->feed));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&request->statement));
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&request->mode));
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&request->queue_capacity));
  SVQ_RETURN_NOT_OK(cursor->ReadU32(&request->timeout_ms));
  return ExpectEnd(*cursor);
}

Status DecodeSubscribeResponse(WireCursor* cursor,
                               SubscribeResponse* response) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&response->request_id));
  SVQ_RETURN_NOT_OK(ReadStatus(cursor, &response->status));
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&response->subscription_id));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&response->feed));
  return ExpectEnd(*cursor);
}

Status DecodeFeedRequest(WireCursor* cursor, FeedRequest* request) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&request->request_id));
  SVQ_RETURN_NOT_OK(cursor->ReadString(&request->feed));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&request->clip_count));
  return ExpectEnd(*cursor);
}

Status DecodeFeedResponse(WireCursor* cursor, FeedResponse* response) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&response->request_id));
  SVQ_RETURN_NOT_OK(ReadStatus(cursor, &response->status));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&response->clips_dispatched));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&response->next_clip));
  uint8_t closed = 0;
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&closed));
  response->feed_closed = closed != 0;
  return ExpectEnd(*cursor);
}

Status DecodeEvent(WireCursor* cursor, EventFrame* event) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&event->subscription_id));
  SVQ_RETURN_NOT_OK(cursor->ReadU8(&event->kind));
  // Kind mirrors stream::StreamEvent::Kind; reject values outside it so a
  // hostile server cannot hand the client an unclassifiable event.
  if (event->kind < 1 || event->kind > 4) {
    return Status::Corruption("unknown event kind " +
                              std::to_string(event->kind));
  }
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&event->begin));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&event->end));
  SVQ_RETURN_NOT_OK(cursor->ReadI64(&event->dropped));
  SVQ_RETURN_NOT_OK(ReadStatus(cursor, &event->status));
  return ExpectEnd(*cursor);
}

Status DecodeUnsubscribeRequest(WireCursor* cursor,
                                UnsubscribeRequest* request) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&request->request_id));
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&request->subscription_id));
  return ExpectEnd(*cursor);
}

Status DecodeUnsubscribeResponse(WireCursor* cursor,
                                 UnsubscribeResponse* response) {
  SVQ_RETURN_NOT_OK(cursor->ReadU64(&response->request_id));
  SVQ_RETURN_NOT_OK(ReadStatus(cursor, &response->status));
  return ExpectEnd(*cursor);
}

// ---------------------------------------------------------------------------
// Assembly.

void FrameAssembler::Feed(const char* data, size_t n) {
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

Status FrameAssembler::Next(std::string* payload, bool* has_frame) {
  *has_frame = false;
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return Status::OK();
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(buffer_[consumed_ + i]))
              << (8 * i);
  }
  if (static_cast<size_t>(length) > max_frame_bytes_) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds cap of " +
        std::to_string(max_frame_bytes_));
  }
  if (buffer_.size() - consumed_ < kFrameHeaderBytes + length) {
    return Status::OK();
  }
  payload->assign(buffer_, consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  *has_frame = true;
  return Status::OK();
}

}  // namespace svq::server
