// Surveillance monitoring: the §3.3 motivating scenario. A long-running
// street camera sees rush-hour traffic come and go, so the background rate
// of `car` detections drifts by an order of magnitude over the day. SVAQD
// adapts its background estimates as the stream evolves and reports alerts
// (completed result sequences) live, clip by clip; SVAQ with a fixed
// background probability mis-fires once the traffic pattern shifts.
//
// Run: ./build/examples/surveillance_monitor

#include <cstdio>
#include <memory>

#include "svq/core/online_engine.h"
#include "svq/eval/metrics.h"
#include "svq/eval/workloads.h"
#include "svq/models/synthetic_models.h"
#include "svq/video/video_stream.h"

namespace {

int Fail(const svq::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// A "day" of surveillance footage: quiet night, busy morning, quiet noon.
/// Cars appear rarely at night and near-constantly at rush hour, while the
/// queried action (a person kneeling at the intersection, say a street
/// performer) happens a handful of times across the day.
svq::Result<std::shared_ptr<const svq::video::SyntheticVideo>> MakeDay() {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "crossroad_cam";
  spec.num_frames = 3 * 60 * 60 * 30;  // 3 hours at 30 fps
  spec.seed = 41;
  spec.actions.push_back({"kneeling", 500.0, 20000.0});
  // Off-peak car background.
  svq::video::SyntheticObjectSpec car;
  car.label = "car";
  car.mean_on_frames = 200.0;
  car.mean_off_frames = 5000.0;
  car.correlate_with_action = "kneeling";
  car.correlation = 0.9;
  car.coverage = 1.0;
  spec.objects.push_back(car);
  // Rush hour: the middle hour is saturated with cars (a second, much
  // denser appearance process for the same label).
  svq::video::SyntheticObjectSpec rush = car;
  rush.correlate_with_action.clear();
  rush.correlation = 0.0;
  rush.mean_on_frames = 2500.0;
  rush.mean_off_frames = 800.0;
  spec.objects.push_back(rush);
  return svq::video::SyntheticVideo::Generate(spec);
}

}  // namespace

int main() {
  auto day = MakeDay();
  if (!day.ok()) return Fail(day.status());

  svq::core::Query query;
  query.action = "kneeling";
  query.objects = {"car"};

  svq::models::ModelSet models = svq::models::MakeModelSet(
      *day, svq::models::MaskRcnnI3dSuite(), query.objects, {query.action});

  auto engine = svq::core::OnlineEngine::Create(
      svq::core::OnlineEngine::Mode::kSvaqd, query, svq::core::OnlineConfig(),
      (*day)->layout(), models.detector.get(), models.recognizer.get());
  if (!engine.ok()) return Fail(engine.status());

  std::printf("monitoring %s (%lld frames) for %s ...\n",
              (*day)->name().c_str(),
              static_cast<long long>((*day)->num_frames()),
              query.ToString().c_str());

  // Live loop: push clips as they "arrive", report completed sequences
  // immediately, and show the adaptive background estimates drifting.
  svq::video::SyntheticVideoStream stream(*day, 0);
  const double fpc = (*day)->layout().FramesPerClip();
  int64_t clip_count = 0;
  while (auto clip = stream.NextClip()) {
    if (auto st = (*engine)->ProcessClip(*clip); !st.ok()) return Fail(st);
    ++clip_count;
    for (const auto& seq : (*engine)->TakeCompleted()) {
      const double t0 = seq.begin * fpc / 30.0;
      const double t1 = seq.end * fpc / 30.0;
      std::printf("  ALERT %02d:%02d:%02d - %02d:%02d:%02d  (clips %lld..%lld)\n",
                  static_cast<int>(t0) / 3600, static_cast<int>(t0) / 60 % 60,
                  static_cast<int>(t0) % 60, static_cast<int>(t1) / 3600,
                  static_cast<int>(t1) / 60 % 60, static_cast<int>(t1) % 60,
                  static_cast<long long>(seq.begin),
                  static_cast<long long>(seq.end - 1));
    }
    if (clip_count % 1350 == 0) {  // every half hour of footage
      const auto stats = (*engine)->Snapshot();
      std::printf("  [t=%4.0f min] car background p=%.4f (k_crit=%d), "
                  "action p=%.4f (k_crit=%d)\n",
                  clip_count * fpc / 30.0 / 60.0, stats.object_p[0],
                  stats.object_kcrits[0], stats.action_p, stats.action_kcrit);
    }
  }

  // How did the adaptive engine do against the annotation?
  const auto result_stats = (*engine)->Snapshot();
  const svq::video::IntervalSet truth =
      svq::eval::TruthFrames(**day, query)
          .CoarsenAny((*day)->layout().FramesPerClip());
  const svq::eval::MatchStats match =
      svq::eval::SequenceMatch((*engine)->sequences(), truth, 0.5);
  std::printf("\nday summary: %lld clips, %lld positive, F1=%.2f "
              "(tp=%lld fp=%lld fn=%lld)\n",
              static_cast<long long>(result_stats.clips_processed),
              static_cast<long long>(result_stats.clips_positive), match.f1(),
              static_cast<long long>(match.tp),
              static_cast<long long>(match.fp),
              static_cast<long long>(match.fn));
  std::printf("simulated model inference: %.1f min; algorithm overhead: "
              "%.0f ms\n",
              result_stats.model_ms / 60000.0, result_stats.algorithm_ms);
  return 0;
}
