// Quickstart: generate a synthetic video, run a streaming SVAQD query and
// an offline ranked RVAQ query over it — the ten-minute tour of the API.
//
// Build: cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "svq/core/engine.h"
#include "svq/query/executor.h"
#include "svq/video/synthetic_video.h"

namespace {

int Fail(const svq::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. A five-minute synthetic video: a person jumps now and then, and a
  //    car tends to be around while they do.
  svq::video::SyntheticVideoSpec spec;
  spec.name = "demo_video";
  spec.num_frames = 5 * 60 * 30;  // 5 min at 30 fps
  spec.seed = 7;
  spec.actions.push_back({"jumping", /*mean_on=*/350.0, /*mean_off=*/4200.0});
  svq::video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.85;
  car.coverage = 0.9;
  car.mean_on_frames = 280.0;
  car.mean_off_frames = 2200.0;
  spec.objects.push_back(car);
  svq::video::SyntheticObjectSpec human;
  human.label = "human";
  human.correlate_with_action = "jumping";
  human.correlation = 0.95;
  human.coverage = 0.95;
  human.mean_on_frames = 400.0;
  human.mean_off_frames = 1500.0;
  spec.objects.push_back(human);

  auto video = svq::video::SyntheticVideo::Generate(spec);
  if (!video.ok()) return Fail(video.status());

  // 2. An engine with the default (Mask R-CNN + I3D emulation) model suite.
  svq::core::VideoQueryEngine engine;
  if (auto id = engine.AddVideo(*video); !id.ok()) return Fail(id.status());

  // 3. Streaming query (paper §3, SVAQD) through the SQL-like dialect.
  const char* streaming_sql =
      "SELECT MERGE(clipID) AS Sequence "
      "FROM (PROCESS demo_video PRODUCE clipID, obj USING ObjectDetector, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human')";
  auto streaming = svq::query::ExecuteStatement(&engine, streaming_sql);
  if (!streaming.ok()) return Fail(streaming.status());
  std::printf("streaming query %s found %zu sequences:\n",
              streaming->bound.query.ToString().c_str(),
              streaming->online->sequences.size());
  for (const auto& seq : streaming->online->sequences.intervals()) {
    std::printf("  clips [%lld, %lld]  (frames %lld..%lld)\n",
                static_cast<long long>(seq.begin),
                static_cast<long long>(seq.end - 1),
                static_cast<long long>(seq.begin * 80),
                static_cast<long long>(seq.end * 80 - 1));
  }
  std::printf("  model inference: %.1f simulated seconds, algorithm: %.1f ms\n",
              streaming->online->stats.model_ms / 1000.0,
              streaming->online->stats.algorithm_ms);

  // 4. One-time ingestion, then a ranked top-3 query (paper §4, RVAQ).
  if (auto st = engine.Ingest("demo_video"); !st.ok()) return Fail(st);
  const char* ranked_sql =
      "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
      "FROM (PROCESS demo_video PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human') "
      "ORDER BY RANK(act, obj) LIMIT 3";
  auto ranked = svq::query::ExecuteStatement(&engine, ranked_sql);
  if (!ranked.ok()) return Fail(ranked.status());
  std::printf("\ntop-%lld ranked sequences (RVAQ):\n",
              static_cast<long long>(ranked->bound.k));
  for (const auto& seq : ranked->topk->sequences) {
    std::printf("  clips [%lld, %lld]  score=%.2f\n",
                static_cast<long long>(seq.clips.begin),
                static_cast<long long>(seq.clips.end - 1), seq.upper_bound);
  }
  std::printf("  random accesses: %lld, virtual disk time: %.1f ms\n",
              static_cast<long long>(
                  ranked->topk->stats.storage.random_accesses),
              ranked->topk->stats.virtual_ms);
  return 0;
}
