// Movie search: the offline (§4) workflow over a small repository. Each
// movie is ingested once (clip score tables + individual sequences); ad-hoc
// top-K queries then run in milliseconds of disk work via RVAQ, and the
// example also shows what the same queries cost under the baselines.
//
// Run: ./build/examples/movie_search

#include <chrono>
#include <cstdio>

#include "svq/core/engine.h"
#include "svq/eval/workloads.h"

namespace {

int Fail(const svq::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintResult(const char* algorithm, const svq::core::TopKResult& result) {
  std::printf("  %-12s: %5.2f virtual s, %5lld random accesses ->",
              algorithm,
              (result.stats.virtual_ms + result.stats.algorithm_ms) / 1000.0,
              static_cast<long long>(result.stats.storage.random_accesses));
  for (const auto& seq : result.sequences) {
    std::printf(" [%lld..%lld](%.0f)", static_cast<long long>(seq.clips.begin),
                static_cast<long long>(seq.clips.end - 1), seq.upper_bound);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A repository of two (scaled-down) movies from the paper's Table 2.
  auto movies = svq::eval::MoviesWorkload(/*seed=*/7, /*scale=*/0.35);
  if (!movies.ok()) return Fail(movies.status());

  svq::models::ModelSuite suite = svq::models::MaskRcnnI3dSuite();
  suite.object_profile =
      svq::eval::ApplyWorkloadAccuracy(suite.object_profile);
  svq::core::VideoQueryEngine engine(suite);

  for (size_t i = 0; i < 2; ++i) {
    const auto& movie = (*movies)[i];
    if (auto id = engine.AddVideo(movie.videos[0]); !id.ok()) {
      return Fail(id.status());
    }
    std::printf("ingesting %-24s (%lld frames) ... ", movie.name.c_str(),
                static_cast<long long>(movie.videos[0]->num_frames()));
    std::fflush(stdout);
    if (auto st = engine.Ingest(movie.name); !st.ok()) return Fail(st);
    const std::shared_ptr<const svq::core::IngestedVideo> ingested =
        engine.Ingested(movie.name);
    std::printf("done: %zu object types, %zu action types, %.1f min of "
                "simulated inference\n",
                ingested->object_tables.size(),
                ingested->action_tables.size(),
                ingested->ingest_inference.simulated_ms / 60000.0);
  }

  // Ad-hoc ranked queries against the pre-processed movies.
  for (size_t i = 0; i < 2; ++i) {
    const auto& movie = (*movies)[i];
    std::printf("\ntop-3 '%s' scenes in %s:\n", movie.query.action.c_str(),
                movie.name.c_str());
    for (const auto algorithm :
         {svq::core::OfflineAlgorithm::kRvaq,
          svq::core::OfflineAlgorithm::kPqTraverse,
          svq::core::OfflineAlgorithm::kFagin}) {
      auto result = engine.ExecuteTopK(movie.query, movie.name, 3, algorithm);
      if (!result.ok()) return Fail(result.status());
      const char* name =
          algorithm == svq::core::OfflineAlgorithm::kRvaq ? "RVAQ"
          : algorithm == svq::core::OfflineAlgorithm::kPqTraverse
              ? "Pq-Traverse"
              : "FA";
      PrintResult(name, *result);
    }
  }

  // Cross-repository search: the global best 'smoking' scenes over every
  // ingested movie at once (paper §4.2's multi-video setting).
  svq::core::Query global;
  global.action = "smoking";
  std::printf("\nglobal top-3 '%s' scenes across the repository:\n",
              global.action.c_str());
  if (auto repo = engine.ExecuteTopKAll(global, 3); repo.ok()) {
    for (const auto& entry : repo->sequences) {
      std::printf("  %-24s clips [%lld..%lld]  score=%.0f\n",
                  entry.video_name.c_str(),
                  static_cast<long long>(entry.sequence.clips.begin),
                  static_cast<long long>(entry.sequence.clips.end - 1),
                  entry.sequence.upper_bound);
    }
  } else {
    std::printf("  (no results: %s)\n", repo.status().ToString().c_str());
  }

  // A narrower ad-hoc query nobody anticipated at ingestion time: only one
  // object predicate. The same materialized tables answer it. This one runs
  // under an ExecutionContext with a deadline — the shape an interactive
  // caller (or the svqd serving layer, docs/server.md) uses so a slow query
  // returns an error instead of holding the session.
  svq::core::Query narrow;
  narrow.action = (*movies)[0].query.action;
  narrow.objects = {(*movies)[0].query.objects[0]};
  std::printf("\nad-hoc query %s on %s (10 s budget):\n",
              narrow.ToString().c_str(), (*movies)[0].name.c_str());
  svq::ExecutionContext context;
  context.set_deadline(std::chrono::steady_clock::now() +
                       std::chrono::seconds(10));
  auto result = engine.ExecuteTopK(narrow, (*movies)[0].name, 3,
                                   svq::core::OfflineAlgorithm::kRvaq,
                                   svq::core::OfflineOptions(), context);
  if (result.status().IsDeadlineExceeded()) {
    std::printf("  query exceeded its budget (try a larger deadline)\n");
    return 0;
  }
  if (!result.ok()) return Fail(result.status());
  PrintResult("RVAQ", *result);

  // An impossible deadline cancels cooperatively: the engine polls the
  // context at clip/iterator granularity and unwinds with a clean status
  // instead of running to completion.
  svq::ExecutionContext expired;
  expired.set_deadline(std::chrono::steady_clock::now());
  auto cancelled = engine.ExecuteTopK(narrow, (*movies)[0].name, 3,
                                      svq::core::OfflineAlgorithm::kRvaq,
                                      svq::core::OfflineOptions(), expired);
  std::printf("already-expired deadline -> %s\n",
              cancelled.status().ToString().c_str());
  return 0;
}
