// Interactive query shell: type statements of the SVQ-ACT dialect against a
// demo video repository. Shows the full declarative path — lexer, parser,
// binder, executor — end to end.
//
// Run:  ./build/examples/query_shell            (interactive)
//       echo "<statement>" | ./build/examples/query_shell
//
// Example statements:
//   SELECT MERGE(clipID) FROM (PROCESS street PRODUCE clipID, obj USING
//     ObjectDetector, act USING ActionRecognizer)
//     WHERE act='jumping' AND obj.include('car')
//   SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS street PRODUCE
//     clipID, obj USING ObjectTracker, act USING ActionRecognizer)
//     WHERE act='jumping' AND obj.include('car', 'human')
//     ORDER BY RANK(act, obj) LIMIT 3

#include <cstdio>
#include <iostream>
#include <string>

#include "svq/core/engine.h"
#include "svq/query/executor.h"
#include "svq/query/explain.h"

namespace {

int Fail(const svq::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

svq::Result<std::shared_ptr<const svq::video::SyntheticVideo>> DemoVideo() {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "street";
  spec.num_frames = 10 * 60 * 30;  // 10 minutes
  spec.seed = 2024;
  spec.actions.push_back({"jumping", 400.0, 4500.0});
  spec.actions.push_back({"kneeling", 300.0, 9000.0});
  for (const char* label : {"car", "human", "dog"}) {
    svq::video::SyntheticObjectSpec obj;
    obj.label = label;
    obj.mean_on_frames = 300.0;
    obj.mean_off_frames = 2500.0;
    obj.correlate_with_action = "jumping";
    obj.correlation = std::string(label) == "human" ? 0.95 : 0.7;
    obj.coverage = 0.9;
    spec.objects.push_back(obj);
  }
  return svq::video::SyntheticVideo::Generate(spec);
}

void PrintOutcome(const svq::query::StatementResult& result) {
  if (result.online.has_value()) {
    std::printf("streaming result: %zu sequence(s)\n",
                result.online->sequences.size());
    for (const auto& seq : result.online->sequences.intervals()) {
      std::printf("  clips [%lld, %lld]\n",
                  static_cast<long long>(seq.begin),
                  static_cast<long long>(seq.end - 1));
    }
    return;
  }
  std::printf("ranked result: %zu sequence(s)\n",
              result.topk->sequences.size());
  for (const auto& seq : result.topk->sequences) {
    std::printf("  clips [%lld, %lld]  score=%.2f\n",
                static_cast<long long>(seq.clips.begin),
                static_cast<long long>(seq.clips.end - 1), seq.upper_bound);
  }
  std::printf("  (%lld random accesses, %.0f ms virtual disk time)\n",
              static_cast<long long>(result.topk->stats.storage
                                         .random_accesses),
              result.topk->stats.virtual_ms);
}

}  // namespace

int main() {
  auto video = DemoVideo();
  if (!video.ok()) return Fail(video.status());
  svq::core::VideoQueryEngine engine;
  if (auto id = engine.AddVideo(*video); !id.ok()) return Fail(id.status());
  if (auto st = engine.Ingest("street"); !st.ok()) return Fail(st);

  std::printf("svq-act shell — video 'street' registered and ingested.\n");
  std::printf("actions: jumping, kneeling; objects: car, human, dog.\n");
  std::printf("Enter a statement (single line), or an empty line to quit.\n");

  std::printf(
      "Prefix a statement with EXPLAIN to see its plan, or with\n"
      "EXPLAIN ANALYZE to execute it and see actuals beside estimates.\n");

  std::string line;
  while (std::printf("svq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) break;
    if (svq::query::StripExplain(line).has_value()) {
      // Pin once so the rendered plan and its statistics come from the
      // same catalog view the shell would execute on.
      auto plan = svq::query::ExplainStatementOn(engine.Pin(), line);
      if (!plan.ok()) {
        std::printf("  %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("%s", plan->c_str());
      }
      continue;
    }
    auto result = svq::query::ExecuteStatement(&engine, line);
    if (!result.ok()) {
      std::printf("  %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintOutcome(*result);
  }
  return 0;
}
