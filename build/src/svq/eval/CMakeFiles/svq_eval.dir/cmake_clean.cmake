file(REMOVE_RECURSE
  "CMakeFiles/svq_eval.dir/experiments.cc.o"
  "CMakeFiles/svq_eval.dir/experiments.cc.o.d"
  "CMakeFiles/svq_eval.dir/metrics.cc.o"
  "CMakeFiles/svq_eval.dir/metrics.cc.o.d"
  "CMakeFiles/svq_eval.dir/workloads.cc.o"
  "CMakeFiles/svq_eval.dir/workloads.cc.o.d"
  "libsvq_eval.a"
  "libsvq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
