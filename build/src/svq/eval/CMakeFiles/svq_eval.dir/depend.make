# Empty dependencies file for svq_eval.
# This may be replaced when dependencies are built.
