
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/eval/experiments.cc" "src/svq/eval/CMakeFiles/svq_eval.dir/experiments.cc.o" "gcc" "src/svq/eval/CMakeFiles/svq_eval.dir/experiments.cc.o.d"
  "/root/repo/src/svq/eval/metrics.cc" "src/svq/eval/CMakeFiles/svq_eval.dir/metrics.cc.o" "gcc" "src/svq/eval/CMakeFiles/svq_eval.dir/metrics.cc.o.d"
  "/root/repo/src/svq/eval/workloads.cc" "src/svq/eval/CMakeFiles/svq_eval.dir/workloads.cc.o" "gcc" "src/svq/eval/CMakeFiles/svq_eval.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svq/common/CMakeFiles/svq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/video/CMakeFiles/svq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/models/CMakeFiles/svq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/core/CMakeFiles/svq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/stats/CMakeFiles/svq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/storage/CMakeFiles/svq_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
