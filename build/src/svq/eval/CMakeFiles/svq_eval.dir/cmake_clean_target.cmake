file(REMOVE_RECURSE
  "libsvq_eval.a"
)
