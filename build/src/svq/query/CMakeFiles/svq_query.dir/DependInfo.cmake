
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/query/binder.cc" "src/svq/query/CMakeFiles/svq_query.dir/binder.cc.o" "gcc" "src/svq/query/CMakeFiles/svq_query.dir/binder.cc.o.d"
  "/root/repo/src/svq/query/executor.cc" "src/svq/query/CMakeFiles/svq_query.dir/executor.cc.o" "gcc" "src/svq/query/CMakeFiles/svq_query.dir/executor.cc.o.d"
  "/root/repo/src/svq/query/explain.cc" "src/svq/query/CMakeFiles/svq_query.dir/explain.cc.o" "gcc" "src/svq/query/CMakeFiles/svq_query.dir/explain.cc.o.d"
  "/root/repo/src/svq/query/lexer.cc" "src/svq/query/CMakeFiles/svq_query.dir/lexer.cc.o" "gcc" "src/svq/query/CMakeFiles/svq_query.dir/lexer.cc.o.d"
  "/root/repo/src/svq/query/parser.cc" "src/svq/query/CMakeFiles/svq_query.dir/parser.cc.o" "gcc" "src/svq/query/CMakeFiles/svq_query.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svq/common/CMakeFiles/svq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/core/CMakeFiles/svq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/stats/CMakeFiles/svq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/models/CMakeFiles/svq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/storage/CMakeFiles/svq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/video/CMakeFiles/svq_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
