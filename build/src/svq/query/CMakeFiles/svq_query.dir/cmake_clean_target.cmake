file(REMOVE_RECURSE
  "libsvq_query.a"
)
