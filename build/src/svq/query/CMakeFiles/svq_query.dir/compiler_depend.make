# Empty compiler generated dependencies file for svq_query.
# This may be replaced when dependencies are built.
