file(REMOVE_RECURSE
  "CMakeFiles/svq_query.dir/binder.cc.o"
  "CMakeFiles/svq_query.dir/binder.cc.o.d"
  "CMakeFiles/svq_query.dir/executor.cc.o"
  "CMakeFiles/svq_query.dir/executor.cc.o.d"
  "CMakeFiles/svq_query.dir/explain.cc.o"
  "CMakeFiles/svq_query.dir/explain.cc.o.d"
  "CMakeFiles/svq_query.dir/lexer.cc.o"
  "CMakeFiles/svq_query.dir/lexer.cc.o.d"
  "CMakeFiles/svq_query.dir/parser.cc.o"
  "CMakeFiles/svq_query.dir/parser.cc.o.d"
  "libsvq_query.a"
  "libsvq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
