
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/storage/score_table.cc" "src/svq/storage/CMakeFiles/svq_storage.dir/score_table.cc.o" "gcc" "src/svq/storage/CMakeFiles/svq_storage.dir/score_table.cc.o.d"
  "/root/repo/src/svq/storage/sequence_store.cc" "src/svq/storage/CMakeFiles/svq_storage.dir/sequence_store.cc.o" "gcc" "src/svq/storage/CMakeFiles/svq_storage.dir/sequence_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svq/common/CMakeFiles/svq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/video/CMakeFiles/svq_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
