file(REMOVE_RECURSE
  "libsvq_storage.a"
)
