file(REMOVE_RECURSE
  "CMakeFiles/svq_storage.dir/score_table.cc.o"
  "CMakeFiles/svq_storage.dir/score_table.cc.o.d"
  "CMakeFiles/svq_storage.dir/sequence_store.cc.o"
  "CMakeFiles/svq_storage.dir/sequence_store.cc.o.d"
  "libsvq_storage.a"
  "libsvq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
