# Empty compiler generated dependencies file for svq_storage.
# This may be replaced when dependencies are built.
