file(REMOVE_RECURSE
  "CMakeFiles/svq_models.dir/model_profile.cc.o"
  "CMakeFiles/svq_models.dir/model_profile.cc.o.d"
  "CMakeFiles/svq_models.dir/synthetic_models.cc.o"
  "CMakeFiles/svq_models.dir/synthetic_models.cc.o.d"
  "libsvq_models.a"
  "libsvq_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
