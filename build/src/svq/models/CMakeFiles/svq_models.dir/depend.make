# Empty dependencies file for svq_models.
# This may be replaced when dependencies are built.
