file(REMOVE_RECURSE
  "libsvq_models.a"
)
