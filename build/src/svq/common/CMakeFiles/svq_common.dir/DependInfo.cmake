
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/common/logging.cc" "src/svq/common/CMakeFiles/svq_common.dir/logging.cc.o" "gcc" "src/svq/common/CMakeFiles/svq_common.dir/logging.cc.o.d"
  "/root/repo/src/svq/common/rng.cc" "src/svq/common/CMakeFiles/svq_common.dir/rng.cc.o" "gcc" "src/svq/common/CMakeFiles/svq_common.dir/rng.cc.o.d"
  "/root/repo/src/svq/common/status.cc" "src/svq/common/CMakeFiles/svq_common.dir/status.cc.o" "gcc" "src/svq/common/CMakeFiles/svq_common.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
