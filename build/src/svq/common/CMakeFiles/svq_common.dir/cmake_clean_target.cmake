file(REMOVE_RECURSE
  "libsvq_common.a"
)
