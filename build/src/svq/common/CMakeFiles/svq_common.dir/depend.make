# Empty dependencies file for svq_common.
# This may be replaced when dependencies are built.
