file(REMOVE_RECURSE
  "CMakeFiles/svq_common.dir/logging.cc.o"
  "CMakeFiles/svq_common.dir/logging.cc.o.d"
  "CMakeFiles/svq_common.dir/rng.cc.o"
  "CMakeFiles/svq_common.dir/rng.cc.o.d"
  "CMakeFiles/svq_common.dir/status.cc.o"
  "CMakeFiles/svq_common.dir/status.cc.o.d"
  "libsvq_common.a"
  "libsvq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
