file(REMOVE_RECURSE
  "libsvq_stats.a"
)
