file(REMOVE_RECURSE
  "CMakeFiles/svq_stats.dir/binomial.cc.o"
  "CMakeFiles/svq_stats.dir/binomial.cc.o.d"
  "CMakeFiles/svq_stats.dir/kernel_estimator.cc.o"
  "CMakeFiles/svq_stats.dir/kernel_estimator.cc.o.d"
  "CMakeFiles/svq_stats.dir/scan_statistics.cc.o"
  "CMakeFiles/svq_stats.dir/scan_statistics.cc.o.d"
  "libsvq_stats.a"
  "libsvq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
