
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/stats/binomial.cc" "src/svq/stats/CMakeFiles/svq_stats.dir/binomial.cc.o" "gcc" "src/svq/stats/CMakeFiles/svq_stats.dir/binomial.cc.o.d"
  "/root/repo/src/svq/stats/kernel_estimator.cc" "src/svq/stats/CMakeFiles/svq_stats.dir/kernel_estimator.cc.o" "gcc" "src/svq/stats/CMakeFiles/svq_stats.dir/kernel_estimator.cc.o.d"
  "/root/repo/src/svq/stats/scan_statistics.cc" "src/svq/stats/CMakeFiles/svq_stats.dir/scan_statistics.cc.o" "gcc" "src/svq/stats/CMakeFiles/svq_stats.dir/scan_statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svq/common/CMakeFiles/svq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
