# Empty dependencies file for svq_stats.
# This may be replaced when dependencies are built.
