
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/video/annotation.cc" "src/svq/video/CMakeFiles/svq_video.dir/annotation.cc.o" "gcc" "src/svq/video/CMakeFiles/svq_video.dir/annotation.cc.o.d"
  "/root/repo/src/svq/video/ground_truth.cc" "src/svq/video/CMakeFiles/svq_video.dir/ground_truth.cc.o" "gcc" "src/svq/video/CMakeFiles/svq_video.dir/ground_truth.cc.o.d"
  "/root/repo/src/svq/video/interval_set.cc" "src/svq/video/CMakeFiles/svq_video.dir/interval_set.cc.o" "gcc" "src/svq/video/CMakeFiles/svq_video.dir/interval_set.cc.o.d"
  "/root/repo/src/svq/video/synthetic_video.cc" "src/svq/video/CMakeFiles/svq_video.dir/synthetic_video.cc.o" "gcc" "src/svq/video/CMakeFiles/svq_video.dir/synthetic_video.cc.o.d"
  "/root/repo/src/svq/video/video_stream.cc" "src/svq/video/CMakeFiles/svq_video.dir/video_stream.cc.o" "gcc" "src/svq/video/CMakeFiles/svq_video.dir/video_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svq/common/CMakeFiles/svq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
