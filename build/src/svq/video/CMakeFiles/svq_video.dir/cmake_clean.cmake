file(REMOVE_RECURSE
  "CMakeFiles/svq_video.dir/annotation.cc.o"
  "CMakeFiles/svq_video.dir/annotation.cc.o.d"
  "CMakeFiles/svq_video.dir/ground_truth.cc.o"
  "CMakeFiles/svq_video.dir/ground_truth.cc.o.d"
  "CMakeFiles/svq_video.dir/interval_set.cc.o"
  "CMakeFiles/svq_video.dir/interval_set.cc.o.d"
  "CMakeFiles/svq_video.dir/synthetic_video.cc.o"
  "CMakeFiles/svq_video.dir/synthetic_video.cc.o.d"
  "CMakeFiles/svq_video.dir/video_stream.cc.o"
  "CMakeFiles/svq_video.dir/video_stream.cc.o.d"
  "libsvq_video.a"
  "libsvq_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
