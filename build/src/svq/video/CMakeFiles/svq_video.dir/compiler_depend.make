# Empty compiler generated dependencies file for svq_video.
# This may be replaced when dependencies are built.
