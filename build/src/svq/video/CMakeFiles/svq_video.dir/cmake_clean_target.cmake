file(REMOVE_RECURSE
  "libsvq_video.a"
)
