file(REMOVE_RECURSE
  "libsvq_core.a"
)
