file(REMOVE_RECURSE
  "CMakeFiles/svq_core.dir/baselines.cc.o"
  "CMakeFiles/svq_core.dir/baselines.cc.o.d"
  "CMakeFiles/svq_core.dir/clip_indicator.cc.o"
  "CMakeFiles/svq_core.dir/clip_indicator.cc.o.d"
  "CMakeFiles/svq_core.dir/engine.cc.o"
  "CMakeFiles/svq_core.dir/engine.cc.o.d"
  "CMakeFiles/svq_core.dir/ingest.cc.o"
  "CMakeFiles/svq_core.dir/ingest.cc.o.d"
  "CMakeFiles/svq_core.dir/online_engine.cc.o"
  "CMakeFiles/svq_core.dir/online_engine.cc.o.d"
  "CMakeFiles/svq_core.dir/query.cc.o"
  "CMakeFiles/svq_core.dir/query.cc.o.d"
  "CMakeFiles/svq_core.dir/repository.cc.o"
  "CMakeFiles/svq_core.dir/repository.cc.o.d"
  "CMakeFiles/svq_core.dir/rvaq.cc.o"
  "CMakeFiles/svq_core.dir/rvaq.cc.o.d"
  "CMakeFiles/svq_core.dir/scoring.cc.o"
  "CMakeFiles/svq_core.dir/scoring.cc.o.d"
  "CMakeFiles/svq_core.dir/spatial.cc.o"
  "CMakeFiles/svq_core.dir/spatial.cc.o.d"
  "CMakeFiles/svq_core.dir/tbclip.cc.o"
  "CMakeFiles/svq_core.dir/tbclip.cc.o.d"
  "libsvq_core.a"
  "libsvq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
