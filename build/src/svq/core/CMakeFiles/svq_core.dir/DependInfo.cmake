
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svq/core/baselines.cc" "src/svq/core/CMakeFiles/svq_core.dir/baselines.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/baselines.cc.o.d"
  "/root/repo/src/svq/core/clip_indicator.cc" "src/svq/core/CMakeFiles/svq_core.dir/clip_indicator.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/clip_indicator.cc.o.d"
  "/root/repo/src/svq/core/engine.cc" "src/svq/core/CMakeFiles/svq_core.dir/engine.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/engine.cc.o.d"
  "/root/repo/src/svq/core/ingest.cc" "src/svq/core/CMakeFiles/svq_core.dir/ingest.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/ingest.cc.o.d"
  "/root/repo/src/svq/core/online_engine.cc" "src/svq/core/CMakeFiles/svq_core.dir/online_engine.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/online_engine.cc.o.d"
  "/root/repo/src/svq/core/query.cc" "src/svq/core/CMakeFiles/svq_core.dir/query.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/query.cc.o.d"
  "/root/repo/src/svq/core/repository.cc" "src/svq/core/CMakeFiles/svq_core.dir/repository.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/repository.cc.o.d"
  "/root/repo/src/svq/core/rvaq.cc" "src/svq/core/CMakeFiles/svq_core.dir/rvaq.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/rvaq.cc.o.d"
  "/root/repo/src/svq/core/scoring.cc" "src/svq/core/CMakeFiles/svq_core.dir/scoring.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/scoring.cc.o.d"
  "/root/repo/src/svq/core/spatial.cc" "src/svq/core/CMakeFiles/svq_core.dir/spatial.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/spatial.cc.o.d"
  "/root/repo/src/svq/core/tbclip.cc" "src/svq/core/CMakeFiles/svq_core.dir/tbclip.cc.o" "gcc" "src/svq/core/CMakeFiles/svq_core.dir/tbclip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svq/common/CMakeFiles/svq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/stats/CMakeFiles/svq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/video/CMakeFiles/svq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/models/CMakeFiles/svq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/svq/storage/CMakeFiles/svq_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
