# Empty compiler generated dependencies file for svq_core.
# This may be replaced when dependencies are built.
