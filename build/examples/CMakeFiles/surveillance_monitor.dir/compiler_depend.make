# Empty compiler generated dependencies file for surveillance_monitor.
# This may be replaced when dependencies are built.
