file(REMOVE_RECURSE
  "CMakeFiles/surveillance_monitor.dir/surveillance_monitor.cpp.o"
  "CMakeFiles/surveillance_monitor.dir/surveillance_monitor.cpp.o.d"
  "surveillance_monitor"
  "surveillance_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
