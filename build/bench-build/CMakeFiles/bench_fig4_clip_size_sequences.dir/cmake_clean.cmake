file(REMOVE_RECURSE
  "../bench/bench_fig4_clip_size_sequences"
  "../bench/bench_fig4_clip_size_sequences.pdb"
  "CMakeFiles/bench_fig4_clip_size_sequences.dir/bench_fig4_clip_size_sequences.cc.o"
  "CMakeFiles/bench_fig4_clip_size_sequences.dir/bench_fig4_clip_size_sequences.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_clip_size_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
