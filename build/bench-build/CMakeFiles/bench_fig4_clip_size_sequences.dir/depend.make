# Empty dependencies file for bench_fig4_clip_size_sequences.
# This may be replaced when dependencies are built.
