file(REMOVE_RECURSE
  "../bench/bench_table5_fpr"
  "../bench/bench_table5_fpr.pdb"
  "CMakeFiles/bench_table5_fpr.dir/bench_table5_fpr.cc.o"
  "CMakeFiles/bench_table5_fpr.dir/bench_table5_fpr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
