# Empty dependencies file for bench_table5_fpr.
# This may be replaced when dependencies are built.
