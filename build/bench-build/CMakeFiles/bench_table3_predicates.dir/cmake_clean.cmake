file(REMOVE_RECURSE
  "../bench/bench_table3_predicates"
  "../bench/bench_table3_predicates.pdb"
  "CMakeFiles/bench_table3_predicates.dir/bench_table3_predicates.cc.o"
  "CMakeFiles/bench_table3_predicates.dir/bench_table3_predicates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
