# Empty compiler generated dependencies file for bench_table6_offline_movie.
# This may be replaced when dependencies are built.
