file(REMOVE_RECURSE
  "../bench/bench_table6_offline_movie"
  "../bench/bench_table6_offline_movie.pdb"
  "CMakeFiles/bench_table6_offline_movie.dir/bench_table6_offline_movie.cc.o"
  "CMakeFiles/bench_table6_offline_movie.dir/bench_table6_offline_movie.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_offline_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
