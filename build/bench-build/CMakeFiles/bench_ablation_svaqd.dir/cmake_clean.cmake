file(REMOVE_RECURSE
  "../bench/bench_ablation_svaqd"
  "../bench/bench_ablation_svaqd.pdb"
  "CMakeFiles/bench_ablation_svaqd.dir/bench_ablation_svaqd.cc.o"
  "CMakeFiles/bench_ablation_svaqd.dir/bench_ablation_svaqd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_svaqd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
