# Empty dependencies file for bench_ablation_svaqd.
# This may be replaced when dependencies are built.
