# Empty dependencies file for bench_table7_offline_youtube.
# This may be replaced when dependencies are built.
