file(REMOVE_RECURSE
  "../bench/bench_table7_offline_youtube"
  "../bench/bench_table7_offline_youtube.pdb"
  "CMakeFiles/bench_table7_offline_youtube.dir/bench_table7_offline_youtube.cc.o"
  "CMakeFiles/bench_table7_offline_youtube.dir/bench_table7_offline_youtube.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_offline_youtube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
