file(REMOVE_RECURSE
  "../bench/bench_runtime_breakdown"
  "../bench/bench_runtime_breakdown.pdb"
  "CMakeFiles/bench_runtime_breakdown.dir/bench_runtime_breakdown.cc.o"
  "CMakeFiles/bench_runtime_breakdown.dir/bench_runtime_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
