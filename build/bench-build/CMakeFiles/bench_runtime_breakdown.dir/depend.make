# Empty dependencies file for bench_runtime_breakdown.
# This may be replaced when dependencies are built.
