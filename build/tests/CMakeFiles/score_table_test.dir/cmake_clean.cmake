file(REMOVE_RECURSE
  "CMakeFiles/score_table_test.dir/score_table_test.cc.o"
  "CMakeFiles/score_table_test.dir/score_table_test.cc.o.d"
  "score_table_test"
  "score_table_test.pdb"
  "score_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
