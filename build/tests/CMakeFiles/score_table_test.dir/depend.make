# Empty dependencies file for score_table_test.
# This may be replaced when dependencies are built.
