# Empty dependencies file for binomial_test.
# This may be replaced when dependencies are built.
