# Empty dependencies file for rvaq_test.
# This may be replaced when dependencies are built.
