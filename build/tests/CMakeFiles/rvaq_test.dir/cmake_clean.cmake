file(REMOVE_RECURSE
  "CMakeFiles/rvaq_test.dir/rvaq_test.cc.o"
  "CMakeFiles/rvaq_test.dir/rvaq_test.cc.o.d"
  "rvaq_test"
  "rvaq_test.pdb"
  "rvaq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvaq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
