file(REMOVE_RECURSE
  "CMakeFiles/scan_statistics_test.dir/scan_statistics_test.cc.o"
  "CMakeFiles/scan_statistics_test.dir/scan_statistics_test.cc.o.d"
  "scan_statistics_test"
  "scan_statistics_test.pdb"
  "scan_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
