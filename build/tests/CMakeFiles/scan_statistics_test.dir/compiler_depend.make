# Empty compiler generated dependencies file for scan_statistics_test.
# This may be replaced when dependencies are built.
