# Empty compiler generated dependencies file for tbclip_test.
# This may be replaced when dependencies are built.
