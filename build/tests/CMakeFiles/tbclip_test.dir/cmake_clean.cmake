file(REMOVE_RECURSE
  "CMakeFiles/tbclip_test.dir/tbclip_test.cc.o"
  "CMakeFiles/tbclip_test.dir/tbclip_test.cc.o.d"
  "tbclip_test"
  "tbclip_test.pdb"
  "tbclip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbclip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
