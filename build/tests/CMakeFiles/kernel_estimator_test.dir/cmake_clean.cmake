file(REMOVE_RECURSE
  "CMakeFiles/kernel_estimator_test.dir/kernel_estimator_test.cc.o"
  "CMakeFiles/kernel_estimator_test.dir/kernel_estimator_test.cc.o.d"
  "kernel_estimator_test"
  "kernel_estimator_test.pdb"
  "kernel_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
