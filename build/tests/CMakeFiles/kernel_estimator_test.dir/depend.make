# Empty dependencies file for kernel_estimator_test.
# This may be replaced when dependencies are built.
