file(REMOVE_RECURSE
  "CMakeFiles/sequence_store_test.dir/sequence_store_test.cc.o"
  "CMakeFiles/sequence_store_test.dir/sequence_store_test.cc.o.d"
  "sequence_store_test"
  "sequence_store_test.pdb"
  "sequence_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
