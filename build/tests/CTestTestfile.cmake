# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/binomial_test[1]_include.cmake")
include("/root/repo/build/tests/scan_statistics_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/interval_set_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_video_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/score_table_test[1]_include.cmake")
include("/root/repo/build/tests/sequence_store_test[1]_include.cmake")
include("/root/repo/build/tests/query_language_test[1]_include.cmake")
include("/root/repo/build/tests/online_engine_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_test[1]_include.cmake")
include("/root/repo/build/tests/tbclip_test[1]_include.cmake")
include("/root/repo/build/tests/rvaq_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/repository_test[1]_include.cmake")
include("/root/repo/build/tests/annotation_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
